// Package conformance is the normative statement of the flexpath
// transport contract, executable against any backend. Every check is
// written purely in terms of flexpath.Transport — attach, publish,
// fetch, release, close/detach/crash — so one suite proves the
// in-process broker, the TCP broker, and the Unix-socket broker
// interchangeable, and a future backend inherits the whole protocol by
// adding one registration call:
//
//	func TestConformanceMine(t *testing.T) {
//		conformance.Run(t, func(t *testing.T) conformance.Backend {
//			b := flexpath.NewBroker()
//			// ... front b with the new backend, t.Cleanup teardown ...
//			return conformance.Backend{Transport: myTransport, Broker: b}
//		})
//	}
//
// The checks cover the properties the rest of the system leans on:
// M×N visibility gating (a step is invisible until every writer rank
// published it), QueueDepth backpressure, launch-order independence,
// end-of-stream at the highest common step, ErrWriterLost on crash,
// supervised detach/re-attach resuming at NextStep, retirement after
// the last release (proven down to pool-generation equality via obs
// spans), and survival of a seeded fault-injection chaos run.
package conformance

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/adios"
	"repro/internal/fault"
	"repro/internal/flexpath"
	"repro/internal/obs"
	"repro/internal/obs/tracetest"
	"repro/internal/pool"
	"repro/internal/sb"
	"repro/internal/streamlog"
)

// Backend is one transport under test. Transport is the client-side
// fabric the checks drive; Broker is the in-process broker the backend
// ultimately fronts (for remote backends, the one behind the server),
// used by checks that assert on broker-side accounting and spans.
type Backend struct {
	Transport flexpath.Transport
	Broker    *flexpath.Broker
	// MakeShm, when non-nil, builds a fresh shared-memory backend with
	// explicit ring sizing, for the shm-specific checks (slot reuse
	// safety, ring-full backpressure). Backends without a shared-memory
	// data plane leave it nil and those checks skip.
	MakeShm func(cfg flexpath.ShmConfig) (Backend, func(), error)
}

// Factory builds a fresh, isolated backend for one check. It is called
// once per subtest; teardown belongs in t.Cleanup.
type Factory func(t *testing.T) Backend

// check is one named contract property.
type check struct {
	name string
	fn   func(t *testing.T, be Backend)
}

// checks is the suite, in rough order of dependence: basic exchange
// first, lifecycle and fault semantics later, chaos last.
var checks = []check{
	{"SingleWriterReader", checkSingleWriterReader},
	{"LaunchOrderIndependence", checkLaunchOrderIndependence},
	{"VisibilityGating", checkVisibilityGating},
	{"MxNExchange", checkMxNExchange},
	{"QueueDepthBackpressure", checkQueueDepthBackpressure},
	{"AttachValidation", checkAttachValidation},
	{"RetiredStep", checkRetiredStep},
	{"ContextCancelUnblocks", checkContextCancelUnblocks},
	{"ClosedHandles", checkClosedHandles},
	{"GroupCloseEOFAtCommonStep", checkGroupCloseEOFAtCommonStep},
	{"CrashUnblocksBlockedReader", checkCrashUnblocksBlockedReader},
	{"CrashUnblocksBlockedPeerWriter", checkCrashUnblocksBlockedPeerWriter},
	{"WriterDetachResume", checkWriterDetachResume},
	{"ReaderDetachResumeGroupMin", checkReaderDetachResumeGroupMin},
	{"ReaderCloseMidStepNeverStrands", checkReaderCloseMidStepNeverStrands},
	{"ConcurrentIdempotentClose", checkConcurrentIdempotentClose},
	{"RetireGenEquality", checkRetireGenEquality},
	{"ReplayFromStepOrdering", checkReplayFromStepOrdering},
	{"ReplayCatchupLiveHandoff", checkReplayCatchupLiveHandoff},
	{"ReplayRetentionHorizon", checkReplayRetentionHorizon},
	{"ReplayRequiresLog", checkReplayRequiresLog},
	{"ShmSlotGenerationReuse", checkShmSlotGenerationReuse},
	{"ShmRingFullBackpressure", checkShmRingFullBackpressure},
	{"TenantNamespaceIsolation", checkTenantNamespaceIsolation},
	{"TenantQuotaRejection", checkTenantQuotaRejection},
	{"TenantEvictionDrains", checkTenantEvictionDrains},
	{"TenantSubmissionIdempotency", checkTenantSubmissionIdempotency},
	{"ChaosFaultInjection", checkChaosFaultInjection},
}

// Run executes every contract check against a fresh backend from f.
func Run(t *testing.T, f Factory) {
	for _, c := range checks {
		c := c
		t.Run(c.name, func(t *testing.T) {
			c.fn(t, f(t))
		})
	}
}

// Checks returns the names of the contract checks, in execution order
// (for tooling that needs to enumerate or select them).
func Checks() []string {
	out := make([]string, len(checks))
	for i, c := range checks {
		out[i] = c.name
	}
	return out
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// The basic rendezvous: publish, meta, fetch, release, and io.EOF once
// the writer group closed.
func checkSingleWriterReader(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w, err := be.Transport.AttachWriter("c.single", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := be.Transport.AttachReader("c.single", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		meta := []byte(fmt.Sprintf("m%d", step))
		payload := []byte(fmt.Sprintf("p%d", step))
		if err := w.PublishBlock(ctx, step, meta, payload); err != nil {
			t.Fatal(err)
		}
		metas, err := r.StepMeta(ctx, step)
		if err != nil {
			t.Fatal(err)
		}
		if len(metas) != 1 || string(metas[0]) != fmt.Sprintf("m%d", step) {
			t.Fatalf("metas = %q", metas)
		}
		got, err := r.FetchBlock(ctx, step, 0)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("p%d", step) {
			t.Fatalf("payload = %q", got)
		}
		if err := r.ReleaseStep(step); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.StepMeta(ctx, 3); !errors.Is(err, io.EOF) {
		t.Fatalf("after close = %v, want EOF", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// Launch-order independence: a reader that attaches before any writer
// exists blocks in WriterSize and resolves once the writer group
// appears — components need not be started in pipeline order.
func checkLaunchOrderIndependence(t *testing.T, be Backend) {
	ctx := ctxT(t)
	r, err := be.Transport.AttachReader("c.order", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make(chan int, 1)
	errc := make(chan error, 1)
	go func() {
		n, err := r.WriterSize(ctx)
		if err != nil {
			errc <- err
			return
		}
		got <- n
	}()
	time.Sleep(20 * time.Millisecond)
	w, err := be.Transport.AttachWriter("c.order", 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	select {
	case n := <-got:
		if n != 3 {
			t.Fatalf("WriterSize = %d, want 3", n)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-ctx.Done():
		t.Fatal("WriterSize never unblocked")
	}
}

// Visibility gating: with M writers, a step must stay invisible until
// every rank published it — a reader seeing a partial step would read
// a torn timestep.
func checkVisibilityGating(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w0, err := be.Transport.AttachWriter("c.gate", 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w1, err := be.Transport.AttachWriter("c.gate", 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	r, err := be.Transport.AttachReader("c.gate", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := w0.PublishBlock(ctx, 0, []byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	// Half-published: the step must not become visible within the probe
	// window.
	probe, cancel := context.WithTimeout(ctx, 60*time.Millisecond)
	_, err = r.StepMeta(probe, 0)
	cancel()
	if err == nil {
		t.Fatal("half-published step became visible")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked StepMeta = %v, want deadline exceeded", err)
	}
	if err := w1.PublishBlock(ctx, 0, []byte("b"), nil); err != nil {
		t.Fatal(err)
	}
	metas, err := r.StepMeta(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || string(metas[0]) != "a" || string(metas[1]) != "b" {
		t.Fatalf("metas = %q", metas)
	}
}

// The full M×N exchange: 2 writers, 3 readers, concurrent ranks, every
// reader sees every writer's block of every step, then EOF at the end.
func checkMxNExchange(t *testing.T, be Backend) {
	ctx := ctxT(t)
	const steps = 5
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			w, err := be.Transport.AttachWriter("c.mxn", rank, 2, 1)
			if err != nil {
				errs <- err
				return
			}
			defer w.Close()
			for s := 0; s < steps; s++ {
				if err := w.PublishBlock(ctx, s, []byte{byte(rank)}, []byte{byte(rank), byte(s)}); err != nil {
					errs <- err
					return
				}
			}
		}(rank)
	}
	for rank := 0; rank < 3; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r, err := be.Transport.AttachReader("c.mxn", rank, 3)
			if err != nil {
				errs <- err
				return
			}
			defer r.Close()
			for s := 0; ; s++ {
				metas, err := r.StepMeta(ctx, s)
				if errors.Is(err, io.EOF) {
					if s != steps {
						errs <- fmt.Errorf("reader %d: EOF at step %d, want %d", rank, s, steps)
					}
					return
				}
				if err != nil {
					errs <- err
					return
				}
				if len(metas) != 2 {
					errs <- fmt.Errorf("step %d: %d metas", s, len(metas))
					return
				}
				for wr := 0; wr < 2; wr++ {
					p, err := r.FetchBlock(ctx, s, wr)
					if err != nil {
						errs <- err
						return
					}
					if len(p) != 2 || p[0] != byte(wr) || p[1] != byte(s) {
						errs <- fmt.Errorf("step %d writer %d payload = %v", s, wr, p)
						return
					}
				}
				if err := r.ReleaseStep(s); err != nil {
					errs <- err
					return
				}
			}
		}(rank)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// QueueDepth backpressure: with depth d, publishing step minStep+d must
// block until the oldest buffered step retires.
func checkQueueDepthBackpressure(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w, err := be.Transport.AttachWriter("c.depth", 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := be.Transport.AttachReader("c.depth", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := w.PublishBlock(ctx, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	published := make(chan error, 1)
	go func() { published <- w.PublishBlock(ctx, 1, nil, nil) }()
	select {
	case err := <-published:
		t.Fatalf("publish beyond the window returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := r.StepMeta(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseStep(0); err != nil {
		t.Fatal(err)
	}
	if err := <-published; err != nil {
		t.Fatal(err)
	}
}

// Attach validation: malformed ranks and group-size conflicts are
// rejected with errors, not accepted silently — whichever process they
// arrive from.
func checkAttachValidation(t *testing.T, be Backend) {
	if _, err := be.Transport.AttachWriter("c.attach", 5, 2, 0); err == nil {
		t.Error("writer rank out of range accepted")
	}
	if _, err := be.Transport.AttachReader("c.attach", 3, 3); err == nil {
		t.Error("reader rank out of range accepted")
	}
	w, err := be.Transport.AttachWriter("c.attach", 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := be.Transport.AttachWriter("c.attach", 1, 3, 0); err == nil {
		t.Error("writer group size conflict accepted")
	}
}

// A released (retired) step is gone: reading it again is ErrStepRetired,
// not a silent replay of stale data.
func checkRetiredStep(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w, err := be.Transport.AttachWriter("c.retired", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := be.Transport.AttachReader("c.retired", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := w.PublishBlock(ctx, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.StepMeta(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseStep(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.StepMeta(ctx, 0); !errors.Is(err, flexpath.ErrStepRetired) {
		t.Fatalf("retired step read = %v, want ErrStepRetired", err)
	}
}

// Context cancellation unblocks a waiting operation with the context's
// error, leaving the handle usable enough to settle cleanly.
func checkContextCancelUnblocks(t *testing.T, be Backend) {
	r, err := be.Transport.AttachReader("c.cancel", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.StepMeta(ctx, 0) // no writer will ever come
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled StepMeta succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock the operation")
	}
}

// Operations on a settled handle fail with ErrClosed, and Close is
// idempotent.
func checkClosedHandles(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w, err := be.Transport.AttachWriter("c.closed", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := be.Transport.AttachReader("c.closed", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.PublishBlock(ctx, 0, nil, nil); !errors.Is(err, flexpath.ErrClosed) {
		t.Fatalf("publish on closed handle = %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close = %v, want nil (idempotent)", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.StepMeta(ctx, 0); !errors.Is(err, flexpath.ErrClosed) {
		t.Fatalf("read on closed handle = %v, want ErrClosed", err)
	}
}

// End of stream lands at the highest step every writer rank published:
// a rank that raced ahead before the group closed does not extend the
// stream past its slowest peer.
func checkGroupCloseEOFAtCommonStep(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w0, err := be.Transport.AttachWriter("c.eof", 0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := be.Transport.AttachWriter("c.eof", 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w0.PublishBlock(ctx, 0, nil, []byte("a0")); err != nil {
		t.Fatal(err)
	}
	if err := w0.PublishBlock(ctx, 1, nil, []byte("a1")); err != nil {
		t.Fatal(err)
	}
	if err := w1.PublishBlock(ctx, 0, nil, []byte("b0")); err != nil {
		t.Fatal(err)
	}
	if err := w0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := be.Transport.AttachReader("c.eof", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	metas, err := r.StepMeta(ctx, 0)
	if err != nil || len(metas) != 2 {
		t.Fatalf("common step unreadable: %v (%d metas)", err, len(metas))
	}
	if err := r.ReleaseStep(0); err != nil {
		t.Fatal(err)
	}
	// Step 1 was published by rank 0 only: past the highest common step,
	// the stream has ended.
	if _, err := r.StepMeta(ctx, 1); !errors.Is(err, io.EOF) {
		t.Fatalf("partial trailing step = %v, want EOF", err)
	}
}

// Crash fails the stream: a blocked reader gets ErrWriterLost instead
// of hanging, completed steps stay drainable, and re-attaching to the
// failed stream reports the same diagnosis.
func checkCrashUnblocksBlockedReader(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w, err := be.Transport.AttachWriter("c.crash", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := be.Transport.AttachReader("c.crash", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := w.PublishBlock(ctx, 0, nil, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := r.StepMeta(ctx, 1) // never arrives: the writer dies first
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := w.Crash(errors.New("simulated component crash")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, flexpath.ErrWriterLost) {
			t.Fatalf("blocked StepMeta after crash = %v, want ErrWriterLost", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("crash did not unblock the waiting reader")
	}
	if _, err := r.StepMeta(ctx, 0); err != nil {
		t.Fatalf("pre-crash step unreadable: %v", err)
	}
	if _, err := r.FetchBlock(ctx, 0, 0); err != nil {
		t.Fatalf("pre-crash block unreadable: %v", err)
	}
	if _, err := be.Transport.AttachWriter("c.crash", 0, 1, 0); !errors.Is(err, flexpath.ErrWriterLost) {
		t.Fatalf("attach to failed stream = %v, want ErrWriterLost", err)
	}
}

// Crash also unblocks a peer writer parked on a full queue window —
// otherwise one rank's death deadlocks the survivors.
func checkCrashUnblocksBlockedPeerWriter(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w0, err := be.Transport.AttachWriter("c.peers", 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := be.Transport.AttachWriter("c.peers", 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := be.Transport.AttachReader("c.peers", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Fill the window: step 0 complete but unreleased, so step 1 blocks.
	if err := w0.PublishBlock(ctx, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := w1.PublishBlock(ctx, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- w0.PublishBlock(ctx, 1, nil, nil) }()
	time.Sleep(20 * time.Millisecond)
	if err := w1.Crash(errors.New("rank 1 died")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, flexpath.ErrWriterLost) {
			t.Fatalf("peer publish after crash = %v, want ErrWriterLost", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("crash did not unblock the blocked peer writer")
	}
}

// Detach + re-attach is the supervised-restart path: the stream neither
// ends nor fails, and the replacement writer resumes at NextStep.
func checkWriterDetachResume(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w, err := be.Transport.AttachWriter("c.resume", 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.NextStep(); got != 0 {
		t.Fatalf("fresh NextStep = %d, want 0", got)
	}
	for s := 0; s < 2; s++ {
		if err := w.PublishBlock(ctx, s, nil, []byte{byte(s)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := w.Detach(); err != nil {
		t.Fatalf("second detach = %v, want nil (idempotent)", err)
	}
	w2, err := be.Transport.AttachWriter("c.resume", 0, 1, 8)
	if err != nil {
		t.Fatalf("re-attach after detach: %v", err)
	}
	if got := w2.NextStep(); got != 2 {
		t.Fatalf("NextStep after re-attach = %d, want 2", got)
	}
	if err := w2.PublishBlock(ctx, 2, nil, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := be.Transport.AttachReader("c.resume", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for s := 0; s < 3; s++ {
		if _, err := r.StepMeta(ctx, s); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		p, err := r.FetchBlock(ctx, s, 0)
		if err != nil || len(p) != 1 || p[0] != byte(s) {
			t.Fatalf("step %d payload = %v, %v", s, p, err)
		}
		if err := r.ReleaseStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.StepMeta(ctx, 3); !errors.Is(err, io.EOF) {
		t.Fatalf("after last step: %v, want EOF", err)
	}
}

// A detached reader rank keeps gating retirement, so a restart cannot
// lose buffered steps; NextStep is the group minimum, realigning a
// restarted collective group on a common step.
func checkReaderDetachResumeGroupMin(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w, err := be.Transport.AttachWriter("c.rdetach", 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r0, err := be.Transport.AttachReader("c.rdetach", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := be.Transport.AttachReader("c.rdetach", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if err := w.PublishBlock(ctx, s, nil, []byte{byte(s)}); err != nil {
			t.Fatal(err)
		}
	}
	// Rank 1 races ahead: releases 0 and 1. Rank 0 releases only 0, then
	// the whole group detaches (supervised restart).
	if err := r1.ReleaseStep(0); err != nil {
		t.Fatal(err)
	}
	if err := r1.ReleaseStep(1); err != nil {
		t.Fatal(err)
	}
	if err := r0.ReleaseStep(0); err != nil {
		t.Fatal(err)
	}
	if err := r0.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := r1.Detach(); err != nil {
		t.Fatal(err)
	}
	n0, err := be.Transport.AttachReader("c.rdetach", 0, 2)
	if err != nil {
		t.Fatalf("re-attach after detach: %v", err)
	}
	defer n0.Close()
	n1, err := be.Transport.AttachReader("c.rdetach", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	if got := n0.NextStep(); got != 1 {
		t.Fatalf("rank 0 NextStep = %d, want 1", got)
	}
	if got := n1.NextStep(); got != 1 {
		t.Fatalf("rank 1 NextStep = %d, want 1 (group min, not its own 2)", got)
	}
	// Step 1 must still be buffered — rank 0 never released it, and its
	// detach did not stop gating retirement.
	if _, err := n1.StepMeta(ctx, 1); err != nil {
		t.Fatalf("buffered step lost across detach: %v", err)
	}
	// Re-releasing an already-released step is a harmless no-op.
	if err := n1.ReleaseStep(1); err != nil {
		t.Fatal(err)
	}
	if err := n0.ReleaseStep(1); err != nil {
		t.Fatal(err)
	}
}

// A reader that dies between StepMeta and FetchBlock must not strand
// the step: the surviving ranks' releases decide retirement and the
// writer's window advances.
func checkReaderCloseMidStepNeverStrands(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w, err := be.Transport.AttachWriter("c.strand", 0, 1, 1) // depth 1: step 0 must retire before step 1
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r0, err := be.Transport.AttachReader("c.strand", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := be.Transport.AttachReader("c.strand", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	if err := w.PublishBlock(ctx, 0, nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Rank 0 sees the step's metadata, then dies before fetching or
	// releasing anything.
	if _, err := r0.StepMeta(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := r0.Close(); err != nil {
		t.Fatal(err)
	}
	// Rank 1 consumes and releases normally.
	if _, err := r1.FetchBlock(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := r1.ReleaseStep(0); err != nil {
		t.Fatal(err)
	}
	// The writer must unblock into step 1: with depth 1 this only works
	// if step 0 actually retired despite rank 0's vanished release.
	pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := w.PublishBlock(pctx, 1, nil, []byte("y")); err != nil {
		t.Fatalf("writer stranded after reader died mid-step: %v", err)
	}
}

// Close must be idempotent and safe under concurrent callers — N racing
// closers must decrement broker-side group refcounts exactly once, and
// the broker's accounting is the witness.
func checkConcurrentIdempotentClose(t *testing.T, be Backend) {
	ctx := ctxT(t)
	w, err := be.Transport.AttachWriter("c.cic", 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]flexpath.ReaderHandle, 2)
	for i := range readers {
		if readers[i], err = be.Transport.AttachReader("c.cic", i, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.PublishBlock(ctx, 0, nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Close(); err != nil {
				t.Errorf("writer close: %v", err)
			}
			for _, r := range readers {
				if err := r.Close(); err != nil {
					t.Errorf("reader close: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	stats := be.Broker.StreamStats()
	if len(stats) != 1 {
		t.Fatalf("streams = %d, want 1", len(stats))
	}
	st := stats[0]
	if st.WritersLive != 0 || st.ReadersLive != 0 {
		t.Fatalf("live handles after close: writers=%d readers=%d", st.WritersLive, st.ReadersLive)
	}
	if !st.Ended {
		t.Fatal("stream did not end after all writers closed")
	}
	if st.QueuedSteps != 0 {
		t.Fatalf("queued steps after all readers closed = %d, want 0 (double-decrement would strand or over-retire)", st.QueuedSteps)
	}
}

// Retirement happens after the last release and recycles exactly the
// buffer that was served: the broker's retire span must carry the same
// pool generation as the fetch span of that step, proving the step's
// payload was held — not copied, not prematurely recycled — from
// publish to retirement.
func checkRetireGenEquality(t *testing.T, be Backend) {
	ctx := ctxT(t)
	tr := obs.NewTracer(0)
	be.Broker.SetObserver(tr, nil)
	const steps = 3
	w, err := be.Transport.AttachWriter("c.gen", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := be.Transport.AttachReader("c.gen", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		meta := pool.Get(2)
		copy(meta.Bytes(), []byte{byte(s), 0x11})
		payload := pool.Get(8)
		for i := range payload.Bytes() {
			payload.Bytes()[i] = byte(s + i)
		}
		if err := w.PublishBlockRef(ctx, s, meta, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := r.StepMeta(ctx, s); err != nil {
			t.Fatal(err)
		}
		if _, err := r.FetchBlock(ctx, s, 0); err != nil {
			t.Fatal(err)
		}
		if err := r.ReleaseStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	spans := tracetest.FromTracer(tr)
	// Every step retires exactly once, after its release.
	tracetest.ExactlyOncePer(t, spans, tracetest.StepKey, tracetest.OfKind(obs.KindBrokerRetire))
	for s := 0; s < steps; s++ {
		fetch := tracetest.ExpectSpan(t, spans, tracetest.OfKind(obs.KindReaderFetch), tracetest.AtStep(s))
		retire := tracetest.ExpectSpan(t, spans, tracetest.OfKind(obs.KindBrokerRetire), tracetest.AtStep(s))
		if fetch.Gen != retire.Gen {
			t.Errorf("step %d: fetch served gen %d but retire recycled gen %d — the broker did not hold one buffer incarnation across the step", s, fetch.Gen, retire.Gen)
		}
		tracetest.ExpectAllBefore(t, spans,
			tracetest.And(tracetest.OfKind(obs.KindReaderFetch), tracetest.AtStep(s)),
			tracetest.And(tracetest.OfKind(obs.KindBrokerRetire), tracetest.AtStep(s)))
	}
}

// attachTempLog mounts a fresh durable log store on the backend's
// broker, rooted in a per-check temp dir. Replay checks call it before
// any traffic so every published step is journaled.
func attachTempLog(t *testing.T, be Backend, opts streamlog.Options) *streamlog.Store {
	t.Helper()
	store, err := streamlog.OpenStore(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	be.Broker.AttachLog(store)
	return store
}

// Shm slot lifecycle: a fetched view of a live step must stay intact
// while the writer keeps publishing (its slot cannot be reclaimed
// before this rank releases the step), and once released the slot must
// actually be reused — same physical storage, new generation, new
// payload — with the fetch-time generation validation still passing.
// The aliasing assertion compares view base pointers, which only a
// genuine shared-memory backend can satisfy; backends without a data
// plane skip.
func checkShmSlotGenerationReuse(t *testing.T, be Backend) {
	if be.MakeShm == nil {
		t.Skip("backend has no shared-memory data plane")
	}
	sbe, cleanup, err := be.MakeShm(flexpath.ShmConfig{}) // default ring: queueDepth+1
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	ctx := ctxT(t)
	pay := func(step int) []byte {
		p := make([]byte, 64)
		for i := range p {
			p[i] = byte(step)
		}
		return p
	}
	w, err := sbe.Transport.AttachWriter("c.shm.reuse", 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sbe.Transport.AttachReader("c.shm.reuse", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the window, view both steps without releasing.
	for s := 0; s < 2; s++ {
		if err := w.PublishBlock(ctx, s, nil, pay(s)); err != nil {
			t.Fatal(err)
		}
	}
	v0, err := r.FetchBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v0[0] != 0 || v0[63] != 0 {
		t.Fatalf("step 0 payload corrupt: % x", v0[:4])
	}
	v1, err := r.FetchBlock(ctx, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v1[0] != 1 {
		t.Fatalf("step 1 payload corrupt: % x", v1[:4])
	}
	// Release 0, let the writer publish into a fresh slot, and check the
	// still-held step-1 view was not disturbed.
	if err := r.ReleaseStep(0); err != nil {
		t.Fatal(err)
	}
	if err := w.PublishBlock(ctx, 2, nil, pay(2)); err != nil {
		t.Fatal(err)
	}
	if v1[0] != 1 || v1[63] != 1 {
		t.Fatalf("held step-1 view disturbed by later publish: % x", v1[:4])
	}
	// Drain to step 3, which cycles the ring (queueDepth+1 = 3 slots)
	// back onto step 0's slot: the new view must alias the same storage
	// with the new step's bytes.
	for s := 1; s <= 2; s++ {
		if err := r.ReleaseStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.PublishBlock(ctx, 3, nil, pay(3)); err != nil {
		t.Fatal(err)
	}
	v3, err := r.FetchBlock(ctx, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v3[0] != 3 || v3[63] != 3 {
		t.Fatalf("reused slot payload corrupt: % x", v3[:4])
	}
	if &v3[0] != &v0[0] {
		t.Fatal("step 3 did not reuse step 0's slot: fetch is not aliasing the shared segment")
	}
	if err := r.ReleaseStep(3); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// Shm ring-full backpressure: with a ring deliberately smaller than the
// queue window (RingSlots 2 against depth 3), publishing step 2 needs
// step 0's slot back, so it must block — even though the broker window
// would admit it — until the reader releases step 0 and retirement
// frees the slot.
func checkShmRingFullBackpressure(t *testing.T, be Backend) {
	if be.MakeShm == nil {
		t.Skip("backend has no shared-memory data plane")
	}
	sbe, cleanup, err := be.MakeShm(flexpath.ShmConfig{RingSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	ctx := ctxT(t)
	w, err := sbe.Transport.AttachWriter("c.shm.full", 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := sbe.Transport.AttachReader("c.shm.full", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for s := 0; s < 2; s++ {
		if err := w.PublishBlock(ctx, s, nil, []byte{byte(s), byte(s)}); err != nil {
			t.Fatal(err)
		}
	}
	v0, err := r.FetchBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	published := make(chan error, 1)
	go func() { published <- w.PublishBlock(ctx, 2, nil, []byte{2, 2}) }()
	select {
	case err := <-published:
		t.Fatalf("publish with a full ring returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if v0[0] != 0 {
		t.Fatalf("held view corrupt while ring blocked: % x", v0)
	}
	if err := r.ReleaseStep(0); err != nil {
		t.Fatal(err)
	}
	if err := <-published; err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 2; s++ {
		got, err := r.FetchBlock(ctx, s, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(s) {
			t.Fatalf("step %d payload = % x", s, got)
		}
		if err := r.ReleaseStep(s); err != nil {
			t.Fatal(err)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Catch-up readers replay from an arbitrary step: after the live
// workflow consumed (and the broker retired) every step, a reader
// opened at step K must still receive K, K+1, ... in order with the
// exact published bytes — served from the durable log — and io.EOF
// past the end. A second session opened at a later step must start
// exactly there.
func checkReplayFromStepOrdering(t *testing.T, be Backend) {
	ctx := ctxT(t)
	attachTempLog(t, be, streamlog.Options{})
	const steps = 5
	w, err := be.Transport.AttachWriter("c.replay.order", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := be.Transport.AttachReader("c.replay.order", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if err := w.PublishBlock(ctx, s, []byte(fmt.Sprintf("m%d", s)), []byte(fmt.Sprintf("p%d", s))); err != nil {
			t.Fatal(err)
		}
		if _, err := lr.StepMeta(ctx, s); err != nil {
			t.Fatal(err)
		}
		if err := lr.ReleaseStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := lr.StepMeta(ctx, steps); !errors.Is(err, io.EOF) {
		t.Fatalf("live reader after close = %v, want EOF", err)
	}
	if err := lr.Close(); err != nil {
		t.Fatal(err)
	}
	for _, from := range []int{0, 2} {
		rr, err := flexpath.OpenReaderFrom(be.Transport, "c.replay.order", from)
		if err != nil {
			t.Fatal(err)
		}
		if got := rr.NextStep(); got != from {
			t.Fatalf("NextStep = %d, want %d", got, from)
		}
		if n, err := rr.WriterSize(ctx); err != nil || n != 1 {
			t.Fatalf("WriterSize = %d, %v", n, err)
		}
		for s := from; s < steps; s++ {
			metas, err := rr.StepMeta(ctx, s)
			if err != nil {
				t.Fatalf("replay step %d: %v", s, err)
			}
			if len(metas) != 1 || string(metas[0]) != fmt.Sprintf("m%d", s) {
				t.Fatalf("replay step %d metas = %q", s, metas)
			}
			p, err := rr.FetchBlock(ctx, s, 0)
			if err != nil {
				t.Fatal(err)
			}
			if string(p) != fmt.Sprintf("p%d", s) {
				t.Fatalf("replay step %d payload = %q", s, p)
			}
			if err := rr.ReleaseStep(s); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rr.StepMeta(ctx, steps); !errors.Is(err, io.EOF) {
			t.Fatalf("replay past end = %v, want EOF", err)
		}
		if err := rr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// The catch-up → live handoff is exactly-once, provable from the
// broker's own spans: steps the broker already retired are served from
// segment reads (log.replay), steps still in the in-memory queue are
// served live (replay.live), and for one replay session every step
// appears in exactly one of the two.
func checkReplayCatchupLiveHandoff(t *testing.T, be Backend) {
	ctx := ctxT(t)
	tr := obs.NewTracer(0)
	reg := obs.NewRegistry()
	be.Broker.SetObserver(tr, reg)
	attachTempLog(t, be, streamlog.Options{})
	const (
		catchup = 3 // steps retired before the replay session opens
		live    = 3 // steps held in memory while the session reads them
		steps   = catchup + live
	)
	w, err := be.Transport.AttachWriter("c.replay.handoff", 0, 1, 2*steps)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := be.Transport.AttachReader("c.replay.handoff", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	publish := func(s int) {
		t.Helper()
		if err := w.PublishBlock(ctx, s, []byte{byte(s)}, []byte{0xAA, byte(s)}); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < catchup; s++ {
		publish(s)
		if _, err := lr.StepMeta(ctx, s); err != nil {
			t.Fatal(err)
		}
		if err := lr.ReleaseStep(s); err != nil {
			t.Fatal(err)
		}
	}
	// Retirement is asynchronous behind the durability gate; wait until
	// the catch-up half is actually out of memory so those replays can
	// only be satisfied from the log.
	waitFor(t, "catch-up steps to retire", func() bool {
		return len(tracetest.FromTracer(tr).Where(tracetest.OfKind(obs.KindBrokerRetire))) >= catchup
	})
	// The live half is published but never released, so it stays in the
	// in-memory queue while the replay session crosses it.
	for s := catchup; s < steps; s++ {
		publish(s)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rr, err := flexpath.OpenReaderFrom(be.Transport, "c.replay.handoff", 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		p, err := rr.FetchBlock(ctx, s, 0)
		if err != nil {
			t.Fatalf("replay step %d: %v", s, err)
		}
		if len(p) != 2 || p[0] != 0xAA || p[1] != byte(s) {
			t.Fatalf("replay step %d payload = %v", s, p)
		}
		if err := rr.ReleaseStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rr.StepMeta(ctx, steps); !errors.Is(err, io.EOF) {
		t.Fatalf("replay past end = %v, want EOF", err)
	}
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}
	for s := catchup; s < steps; s++ {
		if _, err := lr.StepMeta(ctx, s); err != nil {
			t.Fatal(err)
		}
		if err := lr.ReleaseStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := lr.Close(); err != nil {
		t.Fatal(err)
	}
	spans := tracetest.FromTracer(tr).Where(tracetest.OnStream("c.replay.handoff"))
	served := func(s obs.Span) bool {
		return s.Kind == obs.KindLogReplay || s.Kind == obs.KindReplayLive
	}
	tracetest.ExactlyOncePer(t, spans, tracetest.StepKey, served)
	for s := 0; s < catchup; s++ {
		tracetest.ExpectSpan(t, spans, tracetest.OfKind(obs.KindLogReplay), tracetest.AtStep(s))
	}
	for s := catchup; s < steps; s++ {
		tracetest.ExpectSpan(t, spans, tracetest.OfKind(obs.KindReplayLive), tracetest.AtStep(s))
	}
	if got := reg.Snapshot()["log.replayed_steps"]; got != catchup {
		t.Fatalf("log.replayed_steps = %d, want %d", got, catchup)
	}
}

// Retention bounds replay: once the budget evicted a step's segment,
// a catch-up reader positioned before the horizon gets ErrStepRetired
// — not a hang, not silent skipping — and one positioned at the
// horizon replays everything still on disk.
func checkReplayRetentionHorizon(t *testing.T, be Backend) {
	ctx := ctxT(t)
	store := attachTempLog(t, be, streamlog.Options{SegmentBytes: 64, RetainSteps: 2})
	const steps = 8
	w, err := be.Transport.AttachWriter("c.replay.retention", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := be.Transport.AttachReader("c.replay.retention", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if err := w.PublishBlock(ctx, s, []byte{byte(s)}, []byte{byte(s), 0x55}); err != nil {
			t.Fatal(err)
		}
		if _, err := lr.StepMeta(ctx, s); err != nil {
			t.Fatal(err)
		}
		if err := lr.ReleaseStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := lr.StepMeta(ctx, steps); !errors.Is(err, io.EOF) {
		t.Fatalf("live reader after close = %v, want EOF", err)
	}
	if err := lr.Close(); err != nil {
		t.Fatal(err)
	}
	lg, err := store.Log("c.replay.retention")
	if err != nil {
		t.Fatal(err)
	}
	// Quiesce: the write-behind appender has journaled the final retire
	// and the end record, after which eviction is settled.
	waitFor(t, "log to quiesce", func() bool {
		_, ended := lg.Ended()
		return ended && lg.LastRetired() == steps-1 && lg.FirstStep() >= 1
	})
	horizon := lg.FirstStep()
	rr, err := flexpath.OpenReaderFrom(be.Transport, "c.replay.retention", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.StepMeta(ctx, 0); !errors.Is(err, flexpath.ErrStepRetired) {
		t.Fatalf("replay of evicted step = %v, want ErrStepRetired", err)
	}
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}
	rr, err = flexpath.OpenReaderFrom(be.Transport, "c.replay.retention", horizon)
	if err != nil {
		t.Fatal(err)
	}
	for s := horizon; s < steps; s++ {
		p, err := rr.FetchBlock(ctx, s, 0)
		if err != nil {
			t.Fatalf("replay step %d (horizon %d): %v", s, horizon, err)
		}
		if len(p) != 2 || p[0] != byte(s) || p[1] != 0x55 {
			t.Fatalf("replay step %d payload = %v", s, p)
		}
		if err := rr.ReleaseStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rr.StepMeta(ctx, steps); !errors.Is(err, io.EOF) {
		t.Fatalf("replay past end = %v, want EOF", err)
	}
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}
}

// Without an attached log store replay is unavailable, and the failure
// is a prompt, explicit error — never a hang or a silent empty stream.
func checkReplayRequiresLog(t *testing.T, be Backend) {
	if _, err := flexpath.OpenReaderFrom(be.Transport, "c.replay.nolog", 0); err == nil {
		t.Fatal("OpenReaderFrom succeeded without a log store")
	}
}

// transient reports whether err advertises itself as retryable via the
// Transient() convention the workflow supervisor uses.
func transient(err error) bool {
	var te interface{ Transient() bool }
	return errors.As(err, &te) && te.Transient()
}

// Chaos: a seeded fault-injection plan (transient errors, connection
// resets, latency) over the backend, with components that retry
// transient failures. The exchange must still deliver every byte of
// every step to every reader exactly once.
func checkChaosFaultInjection(t *testing.T, be Backend) {
	ctx := ctxT(t)
	ft := fault.New(sb.Fabric{T: be.Transport}, fault.Plan{
		Seed:        42,
		ErrRate:     0.08,
		ResetRate:   0.04,
		LatencyRate: 0.25,
		MaxLatency:  2 * time.Millisecond,
	})
	const (
		writers = 2
		readers = 2
		steps   = 6
		tries   = 200
	)
	retry := func(op func() error) error {
		var err error
		for i := 0; i < tries; i++ {
			if err = op(); err == nil || !transient(err) {
				return err
			}
		}
		return fmt.Errorf("still failing after %d retries: %w", tries, err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for rank := 0; rank < writers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var w adios.BlockWriter
			if err := retry(func() (err error) {
				w, err = ft.AttachWriter("c.chaos", rank, writers, 2)
				return err
			}); err != nil {
				errs <- err
				return
			}
			defer w.Close()
			for s := 0; s < steps; s++ {
				if err := retry(func() error {
					return w.PublishBlock(ctx, s, []byte{byte(rank)}, []byte{byte(rank), byte(s)})
				}); err != nil {
					errs <- err
					return
				}
			}
		}(rank)
	}
	for rank := 0; rank < readers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var r adios.BlockReader
			if err := retry(func() (err error) {
				r, err = ft.AttachReader("c.chaos", rank, readers)
				return err
			}); err != nil {
				errs <- err
				return
			}
			defer r.Close()
			for s := 0; ; s++ {
				var metas [][]byte
				err := retry(func() (err error) {
					metas, err = r.StepMeta(ctx, s)
					return err
				})
				if errors.Is(err, io.EOF) {
					if s != steps {
						errs <- fmt.Errorf("reader %d: EOF at step %d, want %d", rank, s, steps)
					}
					return
				}
				if err != nil {
					errs <- err
					return
				}
				if len(metas) != writers {
					errs <- fmt.Errorf("step %d: %d metas", s, len(metas))
					return
				}
				for wr := 0; wr < writers; wr++ {
					var p []byte
					if err := retry(func() (err error) {
						p, err = r.FetchBlock(ctx, s, wr)
						return err
					}); err != nil {
						errs <- err
						return
					}
					if len(p) != 2 || p[0] != byte(wr) || p[1] != byte(s) {
						errs <- fmt.Errorf("step %d writer %d payload = %v", s, wr, p)
						return
					}
				}
				if err := r.ReleaseStep(s); err != nil {
					errs <- err
					return
				}
			}
		}(rank)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
