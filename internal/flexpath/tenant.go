package flexpath

// Multi-tenant namespacing and admission control. A tenant is a stream
// namespace: stream "velos.fp" submitted by tenant "alice" lives on the
// broker as "alice/velos.fp", so two tenants running the same workflow
// script never collide. The qualification happens in exactly one place —
// the Namespaced transport wrapper — and the qualified name then flows
// through attach/publish/fetch on every backend unchanged, because the
// whole fabric (wire protocol, stream log, replay) already treats stream
// names as opaque strings. The broker side of the tenant model is
// accounting and admission: per-tenant quotas on live streams, writer
// queue depth, and resident bytes (in-memory queue plus the durable
// log's retention accounting), plus graceful eviction that drains
// through the durability watermark instead of severing live readers.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Tenant admission errors.
var (
	// ErrQuotaExceeded is returned when an attach or publish would push a
	// tenant past one of its quotas. It is retryable: the tenant's
	// backlog draining (steps retiring, log segments evicting) or an
	// operator raising the quota both clear it, so supervised stages may
	// back off and retry rather than fail the workflow.
	ErrQuotaExceeded = errors.New("flexpath: tenant quota exceeded")
	// ErrTenantEvicted is returned for operations on a tenant that is
	// being (or has been) evicted. It is terminal: the namespace is going
	// away, retrying against it cannot succeed.
	ErrTenantEvicted = errors.New("flexpath: tenant evicted")
)

// QuotaError is the concrete error behind ErrQuotaExceeded, carrying
// which tenant hit which limit. It self-declares as transient so
// workflow.Retryable treats quota rejections as a clean, retryable
// condition on every backend.
type QuotaError struct {
	Msg string
}

func (e *QuotaError) Error() string { return e.Msg }

// Unwrap ties the error to the ErrQuotaExceeded sentinel.
func (e *QuotaError) Unwrap() error { return ErrQuotaExceeded }

// Transient marks quota rejections retryable (see workflow.Retryable).
func (e *QuotaError) Transient() bool { return true }

func quotaErrf(format string, args ...any) error {
	return &QuotaError{Msg: "flexpath: tenant quota exceeded: " + fmt.Sprintf(format, args...)}
}

// tenantEvictedError wraps ErrTenantEvicted with the rejected tenant.
type tenantEvictedError struct {
	msg string
}

func (e *tenantEvictedError) Error() string { return e.msg }
func (e *tenantEvictedError) Unwrap() error { return ErrTenantEvicted }

func evictedErrf(format string, args ...any) error {
	return &tenantEvictedError{msg: "flexpath: tenant evicted: " + fmt.Sprintf(format, args...)}
}

// SplitTenant splits a qualified stream name into its tenant namespace
// and the bare stream name. Streams without a separator belong to the
// anonymous tenant "" — the single-workflow world every pre-tenant
// caller lives in.
func SplitTenant(stream string) (tenant, name string) {
	if i := strings.IndexByte(stream, '/'); i >= 0 {
		return stream[:i], stream[i+1:]
	}
	return "", stream
}

// ValidTenant checks a tenant name can qualify stream names: non-empty,
// no separator, and drawn from the launch-script component alphabet so
// it survives scripts, URLs, and the stream log's path escaping.
func ValidTenant(name string) error {
	if name == "" {
		return fmt.Errorf("flexpath: empty tenant name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("flexpath: tenant name %q contains %q (want letters, digits, '.', '_', '-')", name, r)
		}
	}
	return nil
}

// TenantQuota bounds one tenant's footprint on the broker. Zero fields
// are unlimited.
type TenantQuota struct {
	// MaxStreams caps the tenant's live streams (streams never retire
	// short of eviction, so this is also a lifetime cap per tenant).
	MaxStreams int
	// MaxQueueDepth caps the writer-side queue depth any of the tenant's
	// streams may attach with — the per-stream buffering admission knob.
	MaxQueueDepth int
	// MaxBytes caps the tenant's resident bytes: the in-memory queued
	// (published, unretired) blocks plus, when a durable log is mounted,
	// the tenant's on-disk log footprint as counted by the stream log's
	// retention accounting. Publishes beyond it are rejected with
	// ErrQuotaExceeded until the backlog drains or segments evict.
	MaxBytes int64
}

// TenantStat is a snapshot of one registered tenant's accounting.
type TenantStat struct {
	Tenant    string
	Quota     TenantQuota
	Streams   int   // live streams in the namespace
	BytesLive int64 // queued (published, unretired) bytes
	BytesLog  int64 // on-disk stream-log bytes (0 without a log)
	Evicting  bool
}

// tenantState is the broker-side accounting of one registered tenant.
// Only registered tenants (SetTenantQuota / EvictTenant) are tracked;
// anonymous and unregistered namespaces pay one nil map lookup.
type tenantState struct {
	quota     TenantQuota
	streams   int   // live streams in the namespace
	bytesLive int64 // queued (published, unretired) bytes
	evicting  bool
}

// tenantOf resolves the registered tenant state a stream belongs to,
// nil for unregistered namespaces. Caller holds b.mu.
func (b *Broker) tenantOf(stream string) *tenantState {
	if len(b.tenants) == 0 {
		return nil
	}
	tenant, _ := SplitTenant(stream)
	return b.tenants[tenant]
}

// tenantEvicting reports whether the stream's namespace is sealed by an
// in-progress eviction. Caller holds b.mu.
func (b *Broker) tenantEvicting(stream string) bool {
	ts := b.tenantOf(stream)
	return ts != nil && ts.evicting
}

// SetTenantQuota registers (or re-quotas) a tenant. Streams already
// live in the namespace are adopted into the accounting, so a quota
// applied late still sees the tenant's existing footprint.
func (b *Broker) SetTenantQuota(tenant string, q TenantQuota) error {
	if err := ValidTenant(tenant); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ts := b.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		if b.tenants == nil {
			b.tenants = make(map[string]*tenantState)
		}
		b.tenants[tenant] = ts
		// Adopt pre-existing streams of the namespace.
		for name, s := range b.streams {
			if owner, _ := SplitTenant(name); owner == tenant {
				ts.streams++
				for _, st := range s.steps {
					ts.bytesLive += stepBytes(st)
				}
			}
		}
	}
	ts.quota = q
	b.cond.Broadcast()
	return nil
}

// TenantStats snapshots every registered tenant, sorted by name.
func (b *Broker) TenantStats() []TenantStat {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TenantStat, 0, len(b.tenants))
	for name, ts := range b.tenants {
		stat := TenantStat{Tenant: name, Quota: ts.quota, Streams: ts.streams,
			BytesLive: ts.bytesLive, Evicting: ts.evicting}
		if b.logStore != nil {
			stat.BytesLog = b.logStore.PrefixBytes(name + "/")
		}
		out = append(out, stat)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// admitAttach is the tenant gate on AttachWriter/AttachReader. creating
// reports whether this attach would create the stream. Caller holds
// b.mu.
func (b *Broker) admitAttach(stream string, depth int, creating, writer bool) error {
	ts := b.tenantOf(stream)
	if ts == nil {
		return nil
	}
	tenant, _ := SplitTenant(stream)
	if ts.evicting {
		return evictedErrf("tenant %q: attach to stream %q refused", tenant, stream)
	}
	if creating && ts.quota.MaxStreams > 0 && ts.streams >= ts.quota.MaxStreams {
		return quotaErrf("tenant %q at its stream cap (%d)", tenant, ts.quota.MaxStreams)
	}
	if writer && ts.quota.MaxQueueDepth > 0 && depth > ts.quota.MaxQueueDepth {
		return quotaErrf("tenant %q queue depth %d exceeds cap %d", tenant, depth, ts.quota.MaxQueueDepth)
	}
	return nil
}

// admitPublish is the tenant gate on accepting a published block of
// nbytes. Caller holds b.mu.
func (b *Broker) admitPublish(s *stream, nbytes int64) error {
	ts := b.tenantOf(s.name)
	if ts == nil {
		return nil
	}
	tenant, _ := SplitTenant(s.name)
	if ts.evicting {
		return evictedErrf("tenant %q: publish on stream %q refused", tenant, s.name)
	}
	if q := ts.quota.MaxBytes; q > 0 {
		total := ts.bytesLive + nbytes
		if b.logStore != nil && !s.logBroken {
			total += b.logStore.PrefixBytes(tenant + "/")
		}
		if total > q {
			return quotaErrf("tenant %q resident bytes %d + %d exceed cap %d (retry after the backlog drains)",
				tenant, total-nbytes, nbytes, q)
		}
	}
	return nil
}

// tenantAccountPublish charges an accepted block to its tenant's
// accounting and tenant-tagged registry counters. Caller holds b.mu.
func (b *Broker) tenantAccountPublish(s *stream, nbytes int64, stepDone bool) {
	ts := b.tenantOf(s.name)
	if ts == nil {
		return
	}
	ts.bytesLive += nbytes
	if b.obs.reg != nil {
		tenant, _ := SplitTenant(s.name)
		tc := b.tenantCounters(tenant)
		tc.bytes.Add(nbytes)
		if stepDone {
			tc.steps.Inc()
		}
	}
}

// tenantAccountFree returns a freed step's bytes to its tenant's
// budget. Caller holds b.mu.
func (b *Broker) tenantAccountFree(s *stream, st *stepState) {
	if ts := b.tenantOf(s.name); ts != nil {
		ts.bytesLive -= stepBytes(st)
	}
}

// tenantCounters resolves (and caches) the tenant-tagged registry
// instruments. Caller holds b.mu; only called with a registry present.
func (b *Broker) tenantCounters(tenant string) *tenantObs {
	tc, ok := b.obs.tenant[tenant]
	if !ok {
		tc = &tenantObs{
			steps: b.obs.reg.Counter("tenant." + tenant + ".steps_published"),
			bytes: b.obs.reg.Counter("tenant." + tenant + ".bytes_published"),
		}
		if b.obs.tenant == nil {
			b.obs.tenant = make(map[string]*tenantObs)
		}
		b.obs.tenant[tenant] = tc
	}
	return tc
}

// tenantObs is one tenant's cached registry instruments.
type tenantObs struct {
	steps *obs.Counter
	bytes *obs.Counter
}

// stepBytes sums a buffered step's meta and payload bytes.
func stepBytes(st *stepState) int64 {
	var n int64
	for i := range st.metas {
		if st.metas[i] != nil {
			n += int64(st.metas[i].Len())
		}
		if st.payloads[i] != nil {
			n += int64(st.payloads[i].Len())
		}
	}
	return n
}

// EvictTenant gracefully removes a tenant from the broker. Eviction is
// a drain, not a sever:
//
//  1. The namespace is sealed — new attaches and publishes are refused
//     with ErrTenantEvicted, and writers parked on a full queue window
//     unblock with the same answer.
//  2. The tenant's buffered steps drain at their consumers' pace: live
//     readers keep fetching and releasing, and each retirement still
//     passes the PR 6 durability gate, so nothing leaves memory before
//     the stream log has it. A stream no reader group ever attached to
//     drains once its published steps are behind the durability
//     watermark (immediately, when no log is mounted).
//  3. The tenant's streams end (blocked readers see io.EOF at the last
//     fully published step, not an error) and are removed, incomplete
//     steps are freed, and the tenant's registration is dropped.
//
// ctx bounds the drain: on expiry the tenant stays sealed and evicting,
// and a later EvictTenant call may resume the drain.
func (b *Broker) EvictTenant(ctx context.Context, tenant string) error {
	if err := ValidTenant(tenant); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ts := b.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		if b.tenants == nil {
			b.tenants = make(map[string]*tenantState)
		}
		b.tenants[tenant] = ts
	}
	ts.evicting = true
	b.cond.Broadcast() // unblock the tenant's parked publishers
	if err := b.wait(ctx, func() bool { return b.tenantDrained(tenant) }); err != nil {
		return err
	}
	// Drained: end and remove the namespace's streams.
	for name, s := range b.streams {
		if owner, _ := SplitTenant(name); owner != tenant {
			continue
		}
		if !s.ended {
			s.ended = true
			s.lastStep = lastFullyPublished(s)
		}
		for step, st := range s.steps {
			delete(s.steps, step)
			b.obs.queuedSteps.Add(-1)
			st.free()
		}
		delete(b.streams, name)
	}
	delete(b.tenants, tenant)
	b.cond.Broadcast()
	return nil
}

// tenantDrained reports whether every stream of the namespace has
// drained (see EvictTenant), retiring what retirement rules allow along
// the way. Caller holds b.mu.
func (b *Broker) tenantDrained(tenant string) bool {
	drained := true
	for name, s := range b.streams {
		if owner, _ := SplitTenant(name); owner != tenant {
			continue
		}
		for s.retireHead(b) {
		}
		if !b.streamDrained(s) {
			drained = false
		}
	}
	return drained
}

// streamDrained reports whether eviction may remove the stream now:
// every fully published step has either retired (reader releases, via
// the durability gate) or — when no reader group exists to drive
// retirement — sits behind the durability watermark. Incomplete steps
// (a writer group that never finished them) never block eviction: with
// the namespace sealed no writer can complete them. Caller holds b.mu.
func (b *Broker) streamDrained(s *stream) bool {
	durable := b.logStore == nil || s.logBroken
	for step, st := range s.steps {
		if !st.complete() {
			continue // incomplete: sealed namespace, can never complete
		}
		if s.readerSize > 0 {
			return false // readers own the drain; wait for their releases
		}
		if !durable && step >= s.logged {
			return false // no readers: the log must have it first
		}
	}
	return true
}

// lastFullyPublished returns the highest step every writer rank
// published, -1 when none. Caller holds b.mu.
func lastFullyPublished(s *stream) int {
	if s.writerSize == 0 {
		return -1
	}
	last := s.lastByRank[0]
	for _, n := range s.lastByRank[1:] {
		if n < last {
			last = n
		}
	}
	return last - 1
}

// Namespaced wraps a transport so every stream name is qualified with
// the tenant's namespace: Attach*("velos.fp") lands on
// "<tenant>/velos.fp". This is the one seam multi-tenancy enters the
// fabric through — components, the workflow runner, and the wire
// protocols all stay tenant-oblivious, on every backend. Closing the
// wrapper is a no-op: the inner transport is shared across tenants and
// owned by whoever built it.
func Namespaced(t Transport, tenant string) (Transport, error) {
	if err := ValidTenant(tenant); err != nil {
		return nil, err
	}
	return &namespaced{inner: t, prefix: tenant + "/"}, nil
}

type namespaced struct {
	inner  Transport
	prefix string
}

// AttachWriter implements Transport.
func (n *namespaced) AttachWriter(stream string, rank, size, depth int) (WriterHandle, error) {
	return n.inner.AttachWriter(n.prefix+stream, rank, size, depth)
}

// AttachReader implements Transport.
func (n *namespaced) AttachReader(stream string, rank, size int) (ReaderHandle, error) {
	return n.inner.AttachReader(n.prefix+stream, rank, size)
}

// OpenReaderFrom implements ReplayTransport when the inner backend does.
func (n *namespaced) OpenReaderFrom(stream string, from int) (ReaderHandle, error) {
	return OpenReaderFrom(n.inner, n.prefix+stream, from)
}

// Close implements Transport as a no-op; the shared inner transport is
// closed by its owner, not per tenant.
func (n *namespaced) Close() error { return nil }

var (
	_ Transport       = (*namespaced)(nil)
	_ ReplayTransport = (*namespaced)(nil)
)
