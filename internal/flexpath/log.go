package flexpath

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/streamlog"
)

// This file is the broker's durability layer: a write-behind bridge
// from the in-memory stream queue to the segmented stream log
// (internal/streamlog), and the recovery path that rebuilds stream
// state from that log after a broker restart.
//
// The ordering contract with the pool is the heart of it. A published
// step's pooled buffers recycle at retirement (stepState.free); with a
// log attached, retireHead additionally requires the step to be below
// the stream's durability watermark (stream.logged), which only the
// appender advances — after the step's bytes are framed to the active
// segment. So the sequence is always publish → append → retire →
// recycle, and a crash between publish and append loses only steps no
// reader could have released yet; everything a reader consumed is on
// disk.
//
// The appender itself is one goroutine per stream, started lazily and
// exiting when its queue drains. It pops jobs under the broker lock but
// performs disk I/O unlocked, so a slow disk back-pressures writers
// only through the ordinary queue-depth window (retirement stalls →
// window stalls), never by holding the broker lock across a write. Jobs
// are strictly FIFO per stream, which preserves the log's append
// invariants: a retire record follows the step it retires, the end
// record follows the last step.
//
// Disk failure policy: the first append error marks the stream
// logBroken, releases the queue, and drops the durability gate. The
// stream degrades to the pre-log, memory-only behavior instead of
// wedging a live workflow on a dead disk; the failure is visible as a
// log.append span carrying the error.

// logJob kinds.
const (
	jobStep = iota + 1
	jobRetire
	jobEnd
)

// logJob is one queued append for a stream's write-behind appender.
type logJob struct {
	kind     int
	step     int         // jobStep, jobRetire
	metas    []*pool.Buf // jobStep: retained refs, released after append
	payloads []*pool.Buf
	lastStep int // jobEnd
}

// AttachLog mounts a durable log store on the broker: from now on every
// fully published step is framed to its stream's segment log before it
// may retire, and Recover can rebuild stream state after a restart.
// Attach before any handles; attaching a store to a broker with live
// traffic leaves already-buffered steps unlogged.
func (b *Broker) AttachLog(store *streamlog.Store) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.logStore = store
	b.registerLogMetricsLocked()
}

// LogStore returns the attached store, or nil.
func (b *Broker) LogStore() *streamlog.Store {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.logStore
}

// registerLogMetricsLocked publishes the log gauges once both a store
// and a registry exist — AttachLog and SetObserver may run in either
// order. Caller holds b.mu.
func (b *Broker) registerLogMetricsLocked() {
	if b.logStore == nil || b.obs.reg == nil {
		return
	}
	store := b.logStore
	b.obs.reg.RegisterFunc("log.segments", func() int64 { return int64(store.Segments()) })
	b.obs.reg.RegisterFunc("log.bytes", func() int64 { return store.Bytes() })
	// log.views counts outstanding mmap views of sealed segments. A
	// quiescent broker (no replay reader mid-step) must report zero —
	// anything else is a leaked release closure pinning a mapping.
	b.obs.reg.RegisterFunc("log.views", func() int64 { return int64(store.OpenViews()) })
}

// FlushLog blocks until every stream's write-behind append queue has
// drained to the segment log, or ctx is done. After it returns, the log
// directory holds everything the broker has accepted — the barrier a
// recorder needs before handing the directory to offline replay.
func (b *Broker) FlushLog(ctx context.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.logStore == nil {
		return nil
	}
	return b.wait(ctx, func() bool {
		for _, s := range b.streams {
			if len(s.logQueue) > 0 || s.logBusy {
				return false
			}
		}
		return true
	})
}

// logEnqueueStep hands a just-completed step to the stream's appender,
// retaining every buffer so the bytes survive until framed regardless
// of what the in-memory queue does. Caller holds b.mu. No-op without a
// store or on a broken log.
func (b *Broker) logEnqueueStep(s *stream, step int, st *stepState) {
	if b.logStore == nil || s.logBroken {
		return
	}
	job := logJob{kind: jobStep, step: step,
		metas:    make([]*pool.Buf, len(st.metas)),
		payloads: make([]*pool.Buf, len(st.payloads))}
	for i := range st.metas {
		job.metas[i] = st.metas[i].Retain()
		job.payloads[i] = st.payloads[i].Retain()
	}
	b.logEnqueue(s, job)
}

// logEnqueueRetire journals a retirement. Caller holds b.mu.
func (b *Broker) logEnqueueRetire(s *stream, step int) {
	if b.logStore == nil || s.logBroken {
		return
	}
	b.logEnqueue(s, logJob{kind: jobRetire, step: step})
}

// logEnqueueEnd journals a graceful stream end. Caller holds b.mu.
func (b *Broker) logEnqueueEnd(s *stream, lastStep int) {
	if b.logStore == nil || s.logBroken {
		return
	}
	b.logEnqueue(s, logJob{kind: jobEnd, lastStep: lastStep})
}

// logEnqueue appends a job and ensures the stream's appender goroutine
// is running. Caller holds b.mu.
func (b *Broker) logEnqueue(s *stream, job logJob) {
	s.logQueue = append(s.logQueue, job)
	if !s.logBusy {
		s.logBusy = true
		go b.runLogAppender(s)
	}
}

// runLogAppender drains one stream's job queue to its segment log,
// advancing the durability watermark and re-running retirement as steps
// land on disk. It exits when the queue is empty; the next enqueue
// starts a fresh incarnation.
func (b *Broker) runLogAppender(s *stream) {
	lg, err := b.logStore.Log(s.name)
	if err != nil {
		b.mu.Lock()
		b.logFailLocked(s, err)
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	for len(s.logQueue) > 0 {
		job := s.logQueue[0]
		s.logQueue = s.logQueue[1:]
		cfg := streamlog.Config{WriterSize: s.writerSize, QueueDepth: s.queueDepth}
		b.mu.Unlock()

		var nbytes int64
		err := func() error {
			switch job.kind {
			case jobStep:
				if err := lg.SetConfig(cfg); err != nil {
					return err
				}
				metas := make([][]byte, len(job.metas))
				payloads := make([][]byte, len(job.payloads))
				for i := range job.metas {
					metas[i] = job.metas[i].Bytes()
					payloads[i] = job.payloads[i].Bytes()
					nbytes += int64(len(metas[i]) + len(payloads[i]))
				}
				return lg.Append(job.step, metas, payloads)
			case jobRetire:
				return lg.AppendRetire(job.step)
			case jobEnd:
				return lg.AppendEnd(job.lastStep)
			}
			return fmt.Errorf("flexpath: unknown log job kind %d", job.kind)
		}()
		for i := range job.metas {
			job.metas[i].Release()
			job.payloads[i].Release()
		}

		b.mu.Lock()
		if err != nil {
			b.logFailLocked(s, err)
			b.mu.Unlock()
			return
		}
		if job.kind == jobStep {
			if tr := b.obs.tracer; tr.Enabled() {
				tr.Emit(obs.Span{Kind: obs.KindLogAppend, Stream: s.name,
					Step: job.step, Rank: -1, Peer: -1, Bytes: nbytes})
			}
			if job.step+1 > s.logged {
				s.logged = job.step + 1
			}
			// The watermark moved: the head step may now retire, and
			// catch-up readers waiting on durability may proceed.
			for s.retireHead(b) {
			}
			b.cond.Broadcast()
		}
	}
	s.logBusy = false
	// FlushLog waits for exactly this: queue empty and appender gone.
	b.cond.Broadcast()
	b.mu.Unlock()
}

// logFailLocked degrades a stream to non-durable operation after a log
// error: the durability gate drops, queued jobs are released, and
// retirement resumes so the live workflow keeps flowing. Caller holds
// b.mu.
func (b *Broker) logFailLocked(s *stream, err error) {
	s.logBroken = true
	s.logBusy = false
	for _, job := range s.logQueue {
		for i := range job.metas {
			job.metas[i].Release()
			job.payloads[i].Release()
		}
	}
	s.logQueue = nil
	if tr := b.obs.tracer; tr.Enabled() {
		tr.Emit(obs.Span{Kind: obs.KindLogAppend, Stream: s.name,
			Rank: -1, Peer: -1, Err: err.Error()})
	}
	for s.retireHead(b) {
	}
	b.cond.Broadcast()
}

// Recover rebuilds stream state from the attached log store: for every
// journaled stream it restores the writer-group shape, reloads the
// unretired step window into the in-memory queue, and repositions the
// resume points so re-attaching writers continue at the durable head
// and re-attaching readers re-read from the recovered window start —
// the ordinary supervised detach/re-attach path, pointed at a new
// broker process. Call after AttachLog and before any handles attach;
// streams that already have a writer group are skipped. Returns the
// number of streams recovered.
func (b *Broker) Recover() (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.logStore == nil {
		return 0, errors.New("flexpath: Recover without an attached log store")
	}
	recovered := 0
	for _, name := range b.logStore.Streams() {
		lg, err := b.logStore.Log(name)
		if err != nil {
			return recovered, err
		}
		cfg, ok := lg.Config()
		if !ok {
			continue // journaled nothing: no state to restore
		}
		s := b.getStream(name)
		if s.writerSize != 0 {
			continue // live stream: recovery only fills empty brokers
		}
		s.writerSize = cfg.WriterSize
		s.queueDepth = cfg.QueueDepth
		s.writerLive = make([]bool, cfg.WriterSize)
		s.writerDone = make([]bool, cfg.WriterSize)
		s.lastByRank = make([]int, cfg.WriterSize)
		next := lg.NextStep()
		for i := range s.lastByRank {
			s.lastByRank[i] = next
		}
		s.minStep = lg.LastRetired() + 1
		var restored int64
		for step := s.minStep; step < next; step++ {
			metas, payloads, err := lg.ReadStep(step)
			if err != nil {
				if errors.Is(err, streamlog.ErrEvicted) {
					// The retire record for this step was lost with the
					// crashed tail while retention had already reclaimed the
					// segment — the step is gone precisely because every
					// reader released it. Treat it as retired.
					s.minStep = step + 1
					continue
				}
				return recovered, err
			}
			st := &stepState{
				metas:    make([]*pool.Buf, len(metas)),
				payloads: make([]*pool.Buf, len(payloads)),
				size:     len(metas),
				pubCount: len(metas),
				released: make(map[int]bool),
			}
			for i := range metas {
				st.metas[i] = pool.Wrap(metas[i])
				st.payloads[i] = pool.Wrap(payloads[i])
				restored += int64(len(metas[i]) + len(payloads[i]))
			}
			s.steps[step] = st
			b.obs.queuedSteps.Add(1)
		}
		s.stepsPublished = next
		s.logged = next
		if last, ended := lg.Ended(); ended {
			s.ended = true
			s.lastStep = last
		}
		if tr := b.obs.tracer; tr.Enabled() {
			tr.Emit(obs.Span{Kind: obs.KindBrokerRecover, Stream: name,
				Step: next, Rank: -1, Peer: -1, Bytes: restored})
		}
		recovered++
	}
	b.cond.Broadcast()
	return recovered, nil
}
