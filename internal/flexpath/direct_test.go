package flexpath

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/ndarray"
)

func directBlock(t *testing.T, off, cnt int, vals ...float64) DirectBlock {
	t.Helper()
	if len(vals) != cnt {
		t.Fatalf("block values %d != count %d", len(vals), cnt)
	}
	return DirectBlock{
		Dims: []ndarray.Dim{{Name: "x", Size: 8}},
		Box:  ndarray.Box{Offsets: []int{off}, Counts: []int{cnt}},
		Data: vals,
	}
}

// TestDirectExchangeRoundTrip drives two ranks through two steps: each
// publishes its half, awaits the pair, and releases — and the exchange
// advances in lockstep.
func TestDirectExchangeRoundTrip(t *testing.T) {
	d := NewDirect(2)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for step := 0; step < 2; step++ {
				base := float64(10*step + 4*rank)
				blk := directBlock(t, 4*rank, 4, base, base+1, base+2, base+3)
				if err := d.Publish(ctx, step, rank, blk); err != nil {
					errs[rank] = err
					return
				}
				blocks, err := d.Await(ctx, step)
				if err != nil {
					errs[rank] = err
					return
				}
				whole := ndarray.Box{Offsets: []int{0}, Counts: []int{8}}
				arr, err := AssembleBox(blocks, whole)
				if err != nil {
					errs[rank] = err
					return
				}
				for i, v := range arr.Data() {
					want := float64(10*step) + float64(i)
					if v != want {
						t.Errorf("rank %d step %d: element %d = %v, want %v", rank, step, i, v, want)
					}
				}
				if err := d.Release(step); err != nil {
					errs[rank] = err
					return
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestDirectRetiredStep rejects operations on steps the exchange has
// already advanced past.
func TestDirectRetiredStep(t *testing.T) {
	d := NewDirect(1)
	ctx := context.Background()
	blk := directBlock(t, 0, 4, 1, 2, 3, 4)
	if err := d.Publish(ctx, 0, 0, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Await(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Release(0); err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(ctx, 0, 0, blk); err == nil {
		t.Fatal("publish into retired step succeeded")
	}
	if _, err := d.Await(ctx, 0); err == nil {
		t.Fatal("await of retired step succeeded")
	}
	if err := d.Release(0); err == nil {
		t.Fatal("release of retired step succeeded")
	}
	if err := d.Publish(ctx, 0, 3, blk); err == nil {
		t.Fatal("publish from out-of-range rank succeeded")
	}
}

// TestDirectAwaitHonorsContext: a rank awaiting a peer that never
// publishes unblocks when its context is cancelled (the supervised-
// restart escape hatch).
func TestDirectAwaitHonorsContext(t *testing.T) {
	d := NewDirect(2)
	ctx, cancel := context.WithCancel(context.Background())
	if err := d.Publish(ctx, 0, 0, directBlock(t, 0, 4, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := d.Await(ctx, 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("await returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("await did not unblock on cancellation")
	}
}

// TestAssembleBoxZeroCopy: when one block covers the requested box
// exactly, the assembled array aliases its data — the aligned fused
// edge moves no bytes.
func TestAssembleBoxZeroCopy(t *testing.T) {
	blocks := []DirectBlock{
		directBlock(t, 0, 4, 1, 2, 3, 4),
		directBlock(t, 4, 4, 5, 6, 7, 8),
	}
	box := ndarray.Box{Offsets: []int{4}, Counts: []int{4}}
	arr, err := AssembleBox(blocks, box)
	if err != nil {
		t.Fatal(err)
	}
	blocks[1].Data[0] = 99
	if arr.Data()[0] != 99 {
		t.Fatal("aligned assembly copied instead of aliasing")
	}
}

// TestAssembleBoxCrossPartition assembles a box spanning two blocks.
func TestAssembleBoxCrossPartition(t *testing.T) {
	blocks := []DirectBlock{
		directBlock(t, 0, 4, 1, 2, 3, 4),
		directBlock(t, 4, 4, 5, 6, 7, 8),
	}
	box := ndarray.Box{Offsets: []int{2}, Counts: []int{4}}
	arr, err := AssembleBox(blocks, box)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 4, 5, 6}
	for i, v := range arr.Data() {
		if v != want[i] {
			t.Fatalf("assembled = %v, want %v", arr.Data(), want)
		}
	}
}

// TestAssembleBoxCoverageError: a box the published blocks do not fully
// cover is an error, not silently zero-filled data.
func TestAssembleBoxCoverageError(t *testing.T) {
	blocks := []DirectBlock{directBlock(t, 0, 4, 1, 2, 3, 4)}
	box := ndarray.Box{Offsets: []int{2}, Counts: []int{4}}
	if _, err := AssembleBox(blocks, box); err == nil {
		t.Fatal("partial coverage assembled without error")
	}
	if _, err := AssembleBox(nil, box); err == nil {
		t.Fatal("assembly from no blocks succeeded")
	}
}
