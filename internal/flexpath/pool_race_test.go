package flexpath

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"testing"

	"repro/internal/pool"
)

// TestPooledFanOutRefcounts hammers the refcounted buffer path under the
// race detector: one writer publishes pooled blocks through a bounded
// queue to four reader ranks that fetch concurrently via both the view
// API (FetchBlock/StepMeta) and the retained-ref API, while one rank
// closes early mid-stream. Every payload carries a checksum verified
// after the pooled storage has been through recycle/reuse cycles, so a
// premature recycle shows up as corruption even without -race.
func TestPooledFanOutRefcounts(t *testing.T) {
	const (
		steps   = 40
		readers = 4
		depth   = 2
		valsN   = 512
	)
	ctx := ctxT(t)
	b := NewBroker()

	payloadFor := func(step int) []byte {
		p := make([]byte, valsN*8)
		for i := 0; i < valsN; i++ {
			binary.LittleEndian.PutUint64(p[i*8:], uint64(step)<<32|uint64(i))
		}
		return p
	}
	metaFor := func(step int) []byte {
		m := make([]byte, 8)
		binary.LittleEndian.PutUint64(m, crc32AsU64(payloadFor(step)))
		return m
	}

	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		w, err := b.AttachWriter("s", 0, 1, depth)
		if err != nil {
			errc <- err
			return
		}
		for step := 0; step < steps; step++ {
			meta := pool.Get(8)
			copy(meta.Bytes(), metaFor(step))
			payload := pool.Get(valsN * 8)
			copy(payload.Bytes(), payloadFor(step))
			// A second-step retain/release on the way in exercises the
			// refcount from the producer side too.
			payload.Retain()
			err := w.PublishBlockRef(ctx, step, meta, payload)
			payload.Release()
			if err != nil {
				errc <- err
				return
			}
		}
		if err := w.Close(); err != nil {
			errc <- err
		}
	}()

	for rank := 0; rank < readers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r, err := b.AttachReader("s", rank, readers)
			if err != nil {
				errc <- err
				return
			}
			defer r.Close()
			for step := 0; ; step++ {
				// Rank 3 departs a third of the way in: the remaining
				// ranks alone must gate retirement from then on.
				if rank == 3 && step == steps/3 {
					return
				}
				var meta, payload []byte
				if rank%2 == 0 {
					metas, err := r.StepMeta(ctx, step)
					if err == io.EOF {
						return
					}
					if err != nil {
						errc <- err
						return
					}
					meta = metas[0]
					payload, err = r.FetchBlock(ctx, step, 0)
					if err != nil {
						errc <- err
						return
					}
				} else {
					metas, err := r.StepMetaRefs(ctx, step)
					if err == io.EOF {
						return
					}
					if err != nil {
						errc <- err
						return
					}
					pref, err := r.FetchBlockRef(ctx, step, 0)
					if err != nil {
						metas[0].Release()
						errc <- err
						return
					}
					meta = append([]byte(nil), metas[0].Bytes()...)
					payload = append([]byte(nil), pref.Bytes()...)
					metas[0].Release()
					pref.Release()
				}
				wantSum := binary.LittleEndian.Uint64(meta)
				if got := crc32AsU64(payload); got != wantSum {
					errc <- fmt.Errorf("rank %d step %d: payload checksum %x, want %x", rank, step, got, wantSum)
					return
				}
				for i := 0; i < valsN; i++ {
					if v := binary.LittleEndian.Uint64(payload[i*8:]); v != uint64(step)<<32|uint64(i) {
						errc <- fmt.Errorf("rank %d step %d: value %d corrupted: %x", rank, step, i, v)
						return
					}
				}
				if err := r.ReleaseStep(step); err != nil {
					errc <- err
					return
				}
			}
		}(rank)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil && err != context.Canceled {
			t.Fatal(err)
		}
	}
}

func crc32AsU64(p []byte) uint64 {
	return uint64(crc32.ChecksumIEEE(p))
}

// TestPooledViewInvalidAfterRelease documents the aliasing contract: a
// FetchBlock view obtained before this rank's ReleaseStep must be copied
// if needed afterward. (The broker recycles the step's pooled buffers
// once every rank has released, so the test only checks the API shape —
// the recycle itself is exercised by TestPooledFanOutRefcounts.)
func TestPooledViewInvalidAfterRelease(t *testing.T) {
	ctx := ctxT(t)
	b := NewBroker()
	w, err := b.AttachWriter("s", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.AttachReader("s", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		meta := pool.Get(4)
		copy(meta.Bytes(), "meta")
		payload := pool.Get(8)
		copy(payload.Bytes(), "payload!")
		done <- w.PublishBlockRef(ctx, 0, meta, payload)
	}()
	if _, err := r.StepMeta(ctx, 0); err != nil {
		t.Fatal(err)
	}
	ref, err := r.FetchBlockRef(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseStep(0); err != nil {
		t.Fatal(err)
	}
	// The retained ref keeps the bytes valid past retirement.
	if string(ref.Bytes()) != "payload!" {
		t.Fatalf("retained ref corrupted: %q", ref.Bytes())
	}
	ref.Release()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
