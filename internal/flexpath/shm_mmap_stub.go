//go:build !unix

package flexpath

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("flexpath: shm transport requires a platform with shared file mappings")

func mmapShared(f *os.File, size int) ([]byte, error) { return nil, errNoMmap }

func munmapShared(b []byte) error { return nil }

func shmAvailable() bool { return false }
