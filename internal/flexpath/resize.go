package flexpath

import "fmt"

// ResizeGroups changes a stream's writer and/or reader group size at a
// step boundary, the broker half of elastic stage rescaling. A zero
// size leaves that side untouched. Both sides require every handle of
// the group to have detached first (the supervisor's detach/re-attach
// restart path): resizing under a live handle would invalidate its rank
// bookkeeping mid-step.
//
// Writer side. The resume boundary is B = min over ranks of the next
// step each would publish. Every step below B is fully published and
// stays buffered exactly as written (its stepState keeps its original
// size, so readers still see the old block count for those steps);
// every step at or above B is necessarily partial — at least one rank
// never published it — and is dropped, to be republished from scratch
// by the resized group, which resumes with every rank at B. Dropped
// partial steps were never handed to the durable log (only complete
// steps are framed), so no journal cleanup is needed.
//
// Reader side. The new group resumes at the old group's collective
// NextStep (the lowest unreleased step, clamped to the live window).
// Steps below the resume point are marked released by every new rank —
// the old group provably consumed them, and without the marks they
// would wedge behind the durability gate — while steps at or beyond it
// have their release marks cleared so the new group re-reads them;
// consumers deduplicate by step, so a re-read is idempotent.
//
// Exactly-once follows from the two boundaries composing: a downstream
// result for step s exists only if s was fully released, which requires
// s fully published upstream, which puts s below every writer boundary
// — so no step with an emitted result is ever recomputed by a resized
// group.
func (b *Broker) ResizeGroups(stream string, writerSize, readerSize int) error {
	if writerSize < 0 || readerSize < 0 {
		return fmt.Errorf("flexpath: negative group size for stream %q", stream)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.streams[stream]
	if !ok {
		return fmt.Errorf("flexpath: resize of unknown stream %q", stream)
	}
	if writerSize > 0 && writerSize != s.writerSize {
		if err := s.resizeWriters(b, writerSize); err != nil {
			return err
		}
	}
	if readerSize > 0 && readerSize != s.readerSize {
		if err := s.resizeReaders(b, readerSize); err != nil {
			return err
		}
	}
	b.cond.Broadcast()
	return nil
}

// resizeWriters replaces the writer group. Caller holds b.mu and has
// checked size differs from the current one.
func (s *stream) resizeWriters(b *Broker, size int) error {
	if s.writerSize == 0 {
		// Pre-declaration: no group ever attached; just fix the size the
		// first attach must match.
		s.writerSize = size
		s.writerLive = make([]bool, size)
		s.writerDone = make([]bool, size)
		s.lastByRank = make([]int, size)
		for i := range s.lastByRank {
			s.lastByRank[i] = s.minStep
		}
		return nil
	}
	if s.ended {
		return fmt.Errorf("flexpath: stream %q writer group already closed, cannot resize", s.name)
	}
	if s.failed != nil {
		return fmt.Errorf("flexpath: stream %q failed, cannot resize: %w", s.name, s.failed)
	}
	if n := s.liveWriters(); n > 0 {
		return fmt.Errorf("flexpath: stream %q has %d live writer handle(s), detach before resizing", s.name, n)
	}
	boundary := s.lastByRank[0]
	for _, n := range s.lastByRank[1:] {
		if n < boundary {
			boundary = n
		}
	}
	for step, st := range s.steps {
		if step >= boundary {
			delete(s.steps, step)
			b.tenantAccountFree(s, st)
			b.obs.queuedSteps.Add(-1)
			st.free()
		}
	}
	s.writerSize = size
	s.writerLive = make([]bool, size)
	s.writerDone = make([]bool, size)
	s.writersClosed = 0
	s.lastByRank = make([]int, size)
	for i := range s.lastByRank {
		s.lastByRank[i] = boundary
	}
	return nil
}

// resizeReaders replaces the reader group. Caller holds b.mu and has
// checked size differs from the current one.
func (s *stream) resizeReaders(b *Broker, size int) error {
	if s.readerSize == 0 {
		s.readerSize = size
		s.readerLive = make([]bool, size)
		s.readerNext = make([]int, size)
		for i := range s.readerNext {
			s.readerNext[i] = s.minStep
		}
		return nil
	}
	if n := s.liveReaders(); n > 0 {
		return fmt.Errorf("flexpath: stream %q has %d live reader handle(s), detach before resizing", s.name, n)
	}
	next := s.readerNext[0]
	for _, n := range s.readerNext[1:] {
		if n < next {
			next = n
		}
	}
	if next < s.minStep {
		next = s.minStep
	}
	s.readerSize = size
	s.readerLive = make([]bool, size)
	s.readerClosed = make(map[int]bool)
	s.readerNext = make([]int, size)
	for i := range s.readerNext {
		s.readerNext[i] = next
	}
	for step, st := range s.steps {
		if step < next {
			for rank := 0; rank < size; rank++ {
				st.released[rank] = true
			}
		} else {
			st.released = make(map[int]bool)
		}
	}
	for s.retireHead(b) {
	}
	return nil
}
