package flexpath

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/pool"
)

// Shared-memory backend: same-node multi-process runs pay the socket
// tax (user→kernel→user copies in both directions) for payloads that
// never leave the machine. This backend splits the transport in two:
//
//   - A doorbell channel — the ordinary Unix-socket broker protocol
//     (CRC frames, heartbeat leases, cancel, replay attach) carries
//     attach/detach, step metadata, and control RPCs. Everything the
//     socket backends learned about liveness and settlement carries
//     over verbatim because it IS the same server loop.
//   - A data plane — an mmap'd, file-backed segment (the socket path +
//     ".seg", so the flock arbitration that owns the socket also owns
//     the segment). Writers copy each payload once into a ring slot of
//     their own and publish a slot reference over the doorbell; readers
//     get views aliasing their mapping of the same physical pages. No
//     payload byte crosses a socket in either direction.
//
// Slot lifecycle rides the pool's refcount machinery: the broker wraps
// a published slot with pool.WrapOnFree, so the exact moment a step's
// fan-out ends (retirement drops the last reference) the hook returns
// the slot to its writer's ring.
//
// Per-slot control word (u64, atomically accessed by every process):
//
//	bits 63..32  generation, bumped by the writer on every claim
//	bits 31..0   state: 0 = free, 1 = busy (claimed or published)
//
// The word is also the cross-process happens-before chain, on real
// hardware and under the race detector alike:
//
//	writer: observe free (acquire) → write payload → store gen+1|busy
//	broker: opShmPublish validates gen (acquire) → wraps the slot
//	reader: fetch response → validate gen (acquire: sees the payload)
//	reader: read payload → RMW "touch" (add 0) at release time
//	broker: final ref drops → RMW busy→free (joins the touch's
//	        release sequence)
//	writer: observe free (acquire: sees every reader's reads) → reuse
//
// The reader-side touch looks like a no-op but is the edge that lets a
// writer's reuse of the slot happen-after every reader's last read —
// without it the only path from reader to writer would run through the
// release RPC, which is invisible to the race detector when both ends
// live in one test process.
//
// Ring sizing: a writer's ring defaults to queueDepth+1 slots, which
// can never block before the broker's own queue window does — claiming
// the slot for step s reuses the slot of step s-(depth+1), and the
// window admitting step s-1 already implied that step retired. Smaller
// rings (ShmConfig.RingSlots) are honored and exercise the
// opShmWaitSlot backpressure path; the conformance suite pins that
// behavior.

// ShmConfig sizes the shared segment. The zero value selects defaults.
type ShmConfig struct {
	// SegmentBytes is the byte size of the mapped segment file (default
	// 256 MiB). The file is created sparse, so untouched slots cost no
	// memory; /dev/shm-backed paths cost RAM only for pages written.
	SegmentBytes int64
	// SlotBytes is the payload capacity of one ring slot (default
	// 4 MiB). Payloads larger than a slot fall back to the inline
	// socket path transparently.
	SlotBytes int
	// RingSlots fixes the per-writer ring length. 0 lets the broker
	// choose queueDepth+1, which never blocks a writer the queue window
	// would admit.
	RingSlots int
}

func (c ShmConfig) withDefaults() ShmConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 256 << 20
	}
	if c.SlotBytes <= 0 {
		c.SlotBytes = 4 << 20
	}
	return c
}

// Segment header layout (bytes). The header is written once by the
// broker before the doorbell socket accepts its first connection, so a
// client that attached successfully always maps a fully formed segment.
const (
	shmMagic       = "SBSHMSEG"
	shmVersion     = 1
	shmHdrVersion  = 8  // u32
	shmHdrSlotSize = 16 // u64
	shmHdrSlots    = 24 // u64
	shmHdrCtrlOff  = 32 // u64
	shmHdrDataOff  = 40 // u64
	shmHeaderBytes = 64
	shmPageAlign   = 4096
)

const shmBusyBit = uint64(1)

func shmWord(gen uint32, busy bool) uint64 {
	w := uint64(gen) << 32
	if busy {
		w |= shmBusyBit
	}
	return w
}

func shmGenOf(w uint64) uint32 { return uint32(w >> 32) }
func shmBusy(w uint64) bool    { return w&0xffffffff != 0 }

// shmSegment is one process's mapping of the shared segment file.
type shmSegment struct {
	f         *os.File
	mem       []byte
	slotBytes int
	slotCount int
	ctrlOff   int
	dataOff   int
}

func putU64(b []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte, off int) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[off+i]) << (8 * i)
	}
	return v
}

// createShmSegment creates (truncating any leftover) and maps the
// segment file. Only the broker calls this, under the socket flock.
func createShmSegment(path string, cfg ShmConfig) (*shmSegment, error) {
	cfg = cfg.withDefaults()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("flexpath: creating shm segment %s: %w", path, err)
	}
	if err := f.Truncate(cfg.SegmentBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("flexpath: sizing shm segment %s: %w", path, err)
	}
	// Solve for the slot count that fits control words + data in the
	// segment, with the data region page-aligned.
	slots := int((cfg.SegmentBytes - 2*shmPageAlign) / (int64(cfg.SlotBytes) + 8))
	if slots < 1 {
		f.Close()
		return nil, fmt.Errorf("flexpath: shm segment %s too small for one %d-byte slot", path, cfg.SlotBytes)
	}
	ctrlOff := shmHeaderBytes
	dataOff := (ctrlOff + 8*slots + shmPageAlign - 1) &^ (shmPageAlign - 1)
	mem, err := mmapShared(f, int(cfg.SegmentBytes))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("flexpath: mapping shm segment %s: %w", path, err)
	}
	copy(mem[:8], shmMagic)
	putU64(mem, shmHdrVersion, shmVersion) // writes version u32 + 4 zero bytes of padding
	putU64(mem, shmHdrSlotSize, uint64(cfg.SlotBytes))
	putU64(mem, shmHdrSlots, uint64(slots))
	putU64(mem, shmHdrCtrlOff, uint64(ctrlOff))
	putU64(mem, shmHdrDataOff, uint64(dataOff))
	return &shmSegment{f: f, mem: mem, slotBytes: cfg.SlotBytes, slotCount: slots,
		ctrlOff: ctrlOff, dataOff: dataOff}, nil
}

// openShmSegment maps an existing segment created by a broker.
func openShmSegment(path string) (*shmSegment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("flexpath: opening shm segment %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	mem, err := mmapShared(f, int(fi.Size()))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("flexpath: mapping shm segment %s: %w", path, err)
	}
	g := &shmSegment{f: f, mem: mem}
	if len(mem) < shmHeaderBytes || string(mem[:8]) != shmMagic {
		g.close()
		return nil, fmt.Errorf("flexpath: %s is not a shm segment", path)
	}
	if v := getU64(mem, shmHdrVersion); v != shmVersion {
		g.close()
		return nil, fmt.Errorf("flexpath: shm segment %s version %d, want %d", path, v, shmVersion)
	}
	g.slotBytes = int(getU64(mem, shmHdrSlotSize))
	g.slotCount = int(getU64(mem, shmHdrSlots))
	g.ctrlOff = int(getU64(mem, shmHdrCtrlOff))
	g.dataOff = int(getU64(mem, shmHdrDataOff))
	if g.dataOff+g.slotCount*g.slotBytes > len(mem) || g.ctrlOff+8*g.slotCount > g.dataOff {
		g.close()
		return nil, fmt.Errorf("flexpath: shm segment %s header inconsistent", path)
	}
	return g, nil
}

func (g *shmSegment) close() {
	if g.mem != nil {
		munmapShared(g.mem)
		g.mem = nil
	}
	if g.f != nil {
		g.f.Close()
		g.f = nil
	}
}

// ctrl returns the slot's control word for atomic access. The control
// region starts 64-byte aligned in a page-aligned mapping, so every
// word is naturally 8-aligned.
func (g *shmSegment) ctrl(slot int) *uint64 {
	return (*uint64)(unsafe.Pointer(&g.mem[g.ctrlOff+8*slot]))
}

// slotData returns the slot's full data window.
func (g *shmSegment) slotData(slot int) []byte {
	off := g.dataOff + slot*g.slotBytes
	return g.mem[off : off+g.slotBytes]
}

// slotIndex reports which slot a byte view aliases, if it is a view of
// this mapping's data region starting on a slot boundary. The broker
// uses it to answer fetches by reference instead of by copy.
func (g *shmSegment) slotIndex(p []byte) (int, bool) {
	if g == nil || len(p) == 0 {
		return 0, false
	}
	base := uintptr(unsafe.Pointer(unsafe.SliceData(g.mem)))
	q := uintptr(unsafe.Pointer(unsafe.SliceData(p)))
	start := base + uintptr(g.dataOff)
	end := start + uintptr(g.slotCount*g.slotBytes)
	if q < start || q >= end {
		return 0, false
	}
	off := int(q - start)
	if off%g.slotBytes != 0 {
		return 0, false
	}
	return off / g.slotBytes, true
}

// shmRing is one writer rank's run of slots. Slot for step s is
// base + s%n, so in-order publishing cycles the run.
type shmRing struct {
	base, n int
}

func (r shmRing) slot(step int) int { return r.base + step%r.n }

// shmServerState is the broker side of the data plane: the segment and
// the ring allocator. Rings are keyed by (stream, writer rank) so a
// supervised re-attach resumes on the same slots its unretired steps
// still occupy; allocation is a bump pointer, never reclaimed — when
// the segment is exhausted new writers degrade to the inline path.
type shmServerState struct {
	seg *shmSegment

	mu       sync.Mutex
	nextSlot int
	rings    map[shmRingKey]shmRing
}

type shmRingKey struct {
	stream string
	rank   int
}

func (st *shmServerState) ring(stream string, rank, want int) shmRing {
	st.mu.Lock()
	defer st.mu.Unlock()
	k := shmRingKey{stream, rank}
	if r, ok := st.rings[k]; ok {
		return r
	}
	if want < 1 {
		want = 1
	}
	if st.nextSlot+want > st.seg.slotCount {
		return shmRing{}
	}
	r := shmRing{base: st.nextSlot, n: want}
	st.nextSlot += want
	st.rings[k] = r
	return r
}

// NewShmServer starts a shared-memory broker: a Unix-socket doorbell at
// path (flock-arbitrated exactly like NewUnixServer) plus the mapped
// segment at path+".seg". The segment is fully initialized before the
// doorbell accepts connections, so any client that attaches maps a
// valid segment. Shutdown unmaps and removes the segment alongside the
// socket.
func NewShmServer(broker *Broker, path string, cfg ShmConfig) (*Server, error) {
	if !shmAvailable() {
		return nil, errNoShm
	}
	ln, lock, err := listenUnix(path)
	if err != nil {
		return nil, err
	}
	segPath := path + ".seg"
	seg, err := createShmSegment(segPath, cfg)
	if err != nil {
		ln.Close()
		os.Remove(path)
		lock.Close()
		return nil, err
	}
	s := &Server{broker: broker, ln: ln, conns: map[net.Conn]struct{}{}, done: make(chan struct{}),
		shm: &shmServerState{seg: seg, rings: map[shmRingKey]shmRing{}}}
	s.cleanup = func() {
		seg.close()
		os.Remove(segPath)
		lock.Close()
	}
	go s.acceptLoop()
	return s, nil
}

var errNoShm = errors.New("flexpath: shm transport not supported on this platform")

// streamQueueDepth reads a live stream's queue depth (set once at the
// first writer attach, immutable after).
func (b *Broker) streamQueueDepth(stream string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.getStream(stream).queueDepth
}

// handleShmRing answers a writer's ring allocation. A zero requested
// size selects queueDepth+1 (never blocks before the queue window). An
// exhausted segment answers a zero-length ring: the writer falls back
// to inline publishes and the workflow keeps running.
func (s *Server) handleShmRing(conn net.Conn, resp *[]byte, body []byte, w *Writer) bool {
	fr := &frameReader{buf: body}
	want := int(fr.u32())
	if fr.err != nil {
		respondErr(conn, resp, fr.err)
		return false
	}
	if s.shm == nil {
		return respondErr(conn, resp, errors.New("flexpath: broker has no shared-memory segment")) == nil
	}
	if want == 0 {
		want = s.broker.streamQueueDepth(w.s.name) + 1
	}
	r := s.shm.ring(w.s.name, w.rank, want)
	return respondOK(conn, resp, func(f *frameWriter) {
		f.u32(uint32(r.base))
		f.u32(uint32(r.n))
	}) == nil
}

// handleShmPublish accepts a step whose payload the writer already
// placed in a ring slot. Ownership of the slot's busy claim passes to
// the broker the moment the request parses: every outcome — publish,
// rejection, cancellation — ends in the wrapped buffer's references
// being consumed, whose final Release frees the slot. The client never
// rolls a claim back, so there is no ambiguous double-free window.
func (s *Server) handleShmPublish(conn net.Conn, resp *[]byte, body []byte,
	arm func() (context.Context, func()), w *Writer) bool {
	fr := &frameReader{buf: body}
	step := int(fr.u32())
	slot := int(fr.u32())
	gen := fr.u32()
	plen := int(fr.u32())
	metaB := fr.bytes()
	if fr.err != nil {
		respondErr(conn, resp, fr.err)
		return false
	}
	shm := s.shm
	if shm == nil || slot < 0 || slot >= shm.seg.slotCount || plen > shm.seg.slotBytes {
		respondErr(conn, resp, fmt.Errorf("flexpath: invalid shm publish (slot %d, %d bytes)", slot, plen))
		return false
	}
	ctrl := shm.seg.ctrl(slot)
	// Acquire-load: observing the writer's published control word makes
	// its payload bytes visible to every broker-side consumer (log
	// appender, inline fallback serving).
	if cw := atomic.LoadUint64(ctrl); shmGenOf(cw) != gen || !shmBusy(cw) {
		respondErr(conn, resp, fmt.Errorf("flexpath: shm slot %d generation mismatch (have %08x, claimed %08x)", slot, shmGenOf(atomic.LoadUint64(ctrl)), gen))
		return false
	}
	meta := pool.Get(len(metaB))
	copy(meta.Bytes(), metaB)
	payload := pool.WrapOnFree(shm.seg.slotData(slot)[:plen], func() {
		// busy→free keeping the generation; an atomic RMW so it joins
		// the release sequence of the readers' touches — the writer's
		// next acquire of this word happens-after their last reads. The
		// hook may run under the broker lock (retirement) or without it
		// (appender, server response paths); it is atomic-only either
		// way, and every waiter rechecks on a poll tick.
		atomic.AddUint64(ctrl, ^uint64(0))
	})
	opCtx, release := arm()
	err := w.PublishBlockRef(opCtx, step, meta, payload)
	release()
	if err != nil {
		return respondErr(conn, resp, err) == nil
	}
	return respondOK(conn, resp, nil) == nil
}

// handleShmWaitSlot parks a writer until its ring slot returns to free.
// This is the ring-full backpressure path: reached only when the ring
// is deliberately smaller than queueDepth+1, so a cold 500µs poll is
// plenty — and polling sidesteps every missed-wakeup hazard of waiting
// on broker state from a reclamation hook that must stay lock-free.
func (s *Server) handleShmWaitSlot(conn net.Conn, resp *[]byte, body []byte,
	arm func() (context.Context, func())) bool {
	fr := &frameReader{buf: body}
	slot := int(fr.u32())
	if fr.err != nil {
		respondErr(conn, resp, fr.err)
		return false
	}
	shm := s.shm
	if shm == nil || slot < 0 || slot >= shm.seg.slotCount {
		respondErr(conn, resp, fmt.Errorf("flexpath: invalid shm wait (slot %d)", slot))
		return false
	}
	ctrl := shm.seg.ctrl(slot)
	opCtx, release := arm()
	var err error
	for shmBusy(atomic.LoadUint64(ctrl)) {
		if err = opCtx.Err(); err != nil {
			break
		}
		select {
		case <-opCtx.Done():
			err = opCtx.Err()
		case <-time.After(500 * time.Microsecond):
		}
		if err != nil {
			break
		}
	}
	release()
	if err != nil {
		return respondErr(conn, resp, err) == nil
	}
	return respondOK(conn, resp, nil) == nil
}

// handleShmFetch answers a block fetch by slot reference when the
// payload lives in the segment (flag 1: the reader reads it from its
// own mapping), falling back to inline bytes (flag 0) for payloads
// published through the socket path — oversized, empty, ring-exhausted,
// or replayed from the durable log.
func (s *Server) handleShmFetch(conn net.Conn, resp *[]byte, body []byte, vecs *net.Buffers,
	arm func() (context.Context, func()), r servedReader) bool {
	fr := &frameReader{buf: body}
	step := int(fr.u32())
	writerRank := int(fr.u32())
	if fr.err != nil {
		respondErr(conn, resp, fr.err)
		return false
	}
	opCtx, release := arm()
	payload, err := r.FetchBlockRef(opCtx, step, writerRank)
	release()
	if err != nil {
		return respondErr(conn, resp, err) == nil
	}
	if s.shm != nil {
		if slot, ok := s.shm.seg.slotIndex(payload.Bytes()); ok {
			gen := shmGenOf(atomic.LoadUint64(s.shm.seg.ctrl(slot)))
			werr := respondOK(conn, resp, func(f *frameWriter) {
				f.u8(1)
				f.u32(uint32(slot))
				f.u32(gen)
				f.u32(uint32(payload.Len()))
			})
			payload.Release()
			return werr == nil
		}
	}
	f := &frameWriter{buf: (*resp)[:0]}
	f.u8(stOK)
	f.u8(0)
	f.u32(uint32(payload.Len()))
	werr := writeFrameVec(conn, vecs, 0, f.buf, payload.Bytes())
	*resp = f.buf[:0]
	payload.Release()
	return werr == nil
}

// ShmTransport is the client side: the doorbell Client plus a lazy
// mapping of the broker's segment (lazy because the segment file only
// exists once the broker is up, and attach already retries until then).
type ShmTransport struct {
	c       *Client
	cfg     ShmConfig
	segPath string

	mu  sync.Mutex
	seg *shmSegment
}

// DialShm prepares a client for a shared-memory broker at the given
// doorbell socket path. No connection or mapping is made until a
// handle attaches.
func DialShm(path string) *ShmTransport {
	return DialShmConfig(path, ShmConfig{})
}

// DialShmConfig is DialShm with explicit ring sizing (conformance and
// benchmarks; the segment geometry itself always comes from the file
// header the broker wrote).
func DialShmConfig(path string, cfg ShmConfig) *ShmTransport {
	c := dial("unix", path)
	c.coalesce = true
	return &ShmTransport{c: c, cfg: cfg, segPath: path + ".seg"}
}

func (t *ShmTransport) ensureSeg() (*shmSegment, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seg != nil {
		return t.seg, nil
	}
	seg, err := openShmSegment(t.segPath)
	if err != nil {
		return nil, err
	}
	t.seg = seg
	return seg, nil
}

// AttachWriter implements Transport: an ordinary doorbell attach, then
// a ring allocation. A zero-length ring (segment exhausted) degrades
// this writer to the inline socket path.
func (t *ShmTransport) AttachWriter(stream string, rank, size, depth int) (WriterHandle, error) {
	rw, err := t.c.AttachWriter(stream, rank, size, depth)
	if err != nil {
		return nil, err
	}
	seg, err := t.ensureSeg()
	if err != nil {
		rw.Detach()
		return nil, err
	}
	f := &frameWriter{}
	f.u32(uint32(t.cfg.RingSlots))
	fr, err := call(nil, rw.conn, &rw.wmu, opShmRing, f.buf, nil)
	if err != nil {
		rw.Detach()
		return nil, fmt.Errorf("flexpath: shm ring allocation: %w", err)
	}
	ring := shmRing{base: int(fr.u32()), n: int(fr.u32())}
	if fr.err != nil {
		rw.Detach()
		return nil, fr.err
	}
	return &ShmWriter{RemoteWriter: rw, seg: seg, ring: ring}, nil
}

// AttachReader implements Transport.
func (t *ShmTransport) AttachReader(stream string, rank, size int) (ReaderHandle, error) {
	rr, err := t.c.AttachReader(stream, rank, size)
	if err != nil {
		return nil, err
	}
	seg, err := t.ensureSeg()
	if err != nil {
		rr.Detach()
		return nil, err
	}
	return &ShmReader{RemoteReader: rr, seg: seg, viewed: map[int][]int{}}, nil
}

// OpenReaderFrom implements ReplayTransport. Replay sessions read
// history from the broker's log — heap bytes, not segment slots — and
// their live tail is served inline too, so a plain socket reader is the
// right vehicle; ReplayReader semantics carry over unchanged.
func (t *ShmTransport) OpenReaderFrom(stream string, from int) (ReaderHandle, error) {
	r, err := t.c.OpenReaderFrom(stream, from)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Close implements Transport: severs doorbell connections and unmaps
// the segment. Settle every handle first — views alias the mapping.
func (t *ShmTransport) Close() error {
	err := t.c.Close()
	t.mu.Lock()
	if t.seg != nil {
		t.seg.close()
		t.seg = nil
	}
	t.mu.Unlock()
	return err
}

// ShmWriter publishes payloads through ring slots, everything else
// through the embedded doorbell writer (heartbeats, settlement, inline
// fallback for oversized/empty payloads or an exhausted ring).
type ShmWriter struct {
	*RemoteWriter
	seg  *shmSegment
	ring shmRing
}

// PublishBlock implements WriterHandle. The payload is copied once,
// into this rank's ring slot; only step metadata and the slot reference
// cross the doorbell.
func (w *ShmWriter) PublishBlock(ctx context.Context, step int, meta, payload []byte) error {
	if w.ring.n == 0 || len(payload) == 0 || len(payload) > w.seg.slotBytes {
		return w.RemoteWriter.PublishBlock(ctx, step, meta, payload)
	}
	rw := w.RemoteWriter
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.closed {
		return ErrClosed
	}
	slot := w.ring.slot(step)
	ctrl := w.seg.ctrl(slot)
	// Claim: wait for the slot to come back from its previous step. The
	// acquire load is the happens-before edge over every reader's last
	// read of the old payload. With the default ring (queueDepth+1) the
	// wait RPC is never taken — the queue window blocks first.
	for shmBusy(atomic.LoadUint64(ctrl)) {
		f := &frameWriter{buf: rw.fbuf[:0]}
		f.u32(uint32(slot))
		rw.fbuf = f.buf
		if _, err := call(ctx, rw.conn, &rw.wmu, opShmWaitSlot, f.buf, &rw.rbuf); err != nil {
			return err
		}
	}
	gen := shmGenOf(atomic.LoadUint64(ctrl)) + 1
	copy(w.seg.slotData(slot), payload)
	// Publication point: the release store makes the payload bytes
	// visible to whoever acquires the new control word.
	atomic.StoreUint64(ctrl, shmWord(gen, true))
	f := &frameWriter{buf: rw.fbuf[:0]}
	f.u32(uint32(step))
	f.u32(uint32(slot))
	f.u32(gen)
	f.u32(uint32(len(payload)))
	f.bytes(meta)
	rw.fbuf = f.buf
	// From here the claim belongs to the broker (see handleShmPublish):
	// no rollback on error, so a cancelled-and-retried publish simply
	// claims the slot afresh.
	_, err := call(ctx, rw.conn, &rw.wmu, opShmPublish, f.buf, &rw.rbuf)
	if err == nil && step >= rw.next {
		rw.next = step + 1
	}
	return err
}

// PublishBlockRef implements WriterHandle, consuming both references.
func (w *ShmWriter) PublishBlockRef(ctx context.Context, step int, meta, payload *pool.Buf) error {
	err := w.PublishBlock(ctx, step, meta.Bytes(), payload.Bytes())
	meta.Release()
	payload.Release()
	return err
}

// ShmReader fetches payloads as views of its own segment mapping;
// metadata and every other operation ride the embedded doorbell reader.
type ShmReader struct {
	*RemoteReader
	seg *shmSegment

	smu    sync.Mutex
	viewed map[int][]int // step → slots this rank was handed views of
}

// FetchBlock implements ReaderHandle. A slot-backed answer is zero
// copy: the returned slice aliases this process's mapping and is valid
// until this rank releases the step (the broker cannot free the slot
// before then — this rank still gates retirement).
func (r *ShmReader) FetchBlock(ctx context.Context, step, writerRank int) ([]byte, error) {
	rr := r.RemoteReader
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.closed {
		return nil, ErrClosed
	}
	f := &frameWriter{buf: rr.fbuf[:0]}
	f.u32(uint32(step))
	f.u32(uint32(writerRank))
	rr.fbuf = f.buf
	fr, err := call(ctx, rr.conn, &rr.wmu, opShmFetch, f.buf, &rr.rbuf)
	if err != nil {
		return nil, err
	}
	if fr.u8() == 1 {
		slot := int(fr.u32())
		gen := fr.u32()
		plen := int(fr.u32())
		if fr.err != nil {
			return nil, fr.err
		}
		if slot < 0 || slot >= r.seg.slotCount || plen > r.seg.slotBytes {
			return nil, fmt.Errorf("flexpath: shm fetch referenced invalid slot %d", slot)
		}
		// Acquire the control word: validates the generation (the slot
		// still holds the step we asked for — it cannot have been
		// reclaimed, since this rank has not released the step) and
		// orders the writer's payload store before our reads.
		if cw := atomic.LoadUint64(r.seg.ctrl(slot)); shmGenOf(cw) != gen || !shmBusy(cw) {
			return nil, fmt.Errorf("flexpath: shm slot %d generation changed under fetch (step %d)", slot, step)
		}
		r.smu.Lock()
		r.viewed[step] = append(r.viewed[step], slot)
		r.smu.Unlock()
		return r.seg.slotData(slot)[:plen], nil
	}
	payload := append([]byte(nil), fr.bytes()...)
	if fr.err != nil {
		return nil, fr.err
	}
	return payload, nil
}

// touch stamps an atomic RMW on every slot this rank viewed for the
// step: the release half of the reader→writer happens-before edge. It
// must run after the caller's last read of those views and before the
// broker can free the slots (i.e. before the release/settle RPC).
func (r *ShmReader) touch(step int) {
	r.smu.Lock()
	slots := r.viewed[step]
	delete(r.viewed, step)
	r.smu.Unlock()
	for _, slot := range slots {
		atomic.AddUint64(r.seg.ctrl(slot), 0)
	}
}

func (r *ShmReader) touchAll() {
	r.smu.Lock()
	var slots []int
	for step, s := range r.viewed {
		slots = append(slots, s...)
		delete(r.viewed, step)
	}
	r.smu.Unlock()
	for _, slot := range slots {
		atomic.AddUint64(r.seg.ctrl(slot), 0)
	}
}

// ReleaseStep implements ReaderHandle.
func (r *ShmReader) ReleaseStep(step int) error {
	r.touch(step)
	return r.RemoteReader.ReleaseStep(step)
}

// Close implements ReaderHandle.
func (r *ShmReader) Close() error {
	r.touchAll()
	return r.RemoteReader.Close()
}

// Detach implements ReaderHandle.
func (r *ShmReader) Detach() error {
	r.touchAll()
	return r.RemoteReader.Detach()
}
