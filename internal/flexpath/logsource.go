package flexpath

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/streamlog"
)

// LogSource is the offline replay facade: a Transport whose streams are
// a recorded log directory instead of a live fabric. There is no broker
// process behind it — AttachReader serves steps straight from the
// segment logs through the same readLogStep path the live catch-up
// reader uses, and AttachWriter refuses, because a recording has
// exactly one side left to play.
//
// Semantics mirror a live stream whose writers already finished:
// WriterSize answers immediately from the journaled config, every step
// from the retention horizon to the log head is served in order, and
// the head reads as io.EOF. A recording that stops without an end
// record (crash, kill, a log copied mid-run) still replays its full
// valid prefix; the missing end is reported through Truncated so a
// caller can warn rather than silently treat a partial run as whole.
//
// Steps below the retention horizon surface as ErrStepRetired with the
// horizon in the message, matching OpenReaderFrom.
type LogSource struct {
	store *streamlog.Store
	own   bool // Close closes the store only if this source opened it

	mu        sync.Mutex
	tracer    *obs.Tracer
	replayed  *obs.Counter
	truncated map[string]bool
	closed    bool
}

// OpenLogSource opens the recorded store rooted at dir read-only. The
// directory must exist and is never mutated: torn tails stay on disk,
// and the source serves exactly the valid prefix of each stream.
func OpenLogSource(dir string) (*LogSource, error) {
	store, err := streamlog.OpenStore(dir, streamlog.Options{ReadOnly: true})
	if err != nil {
		return nil, err
	}
	return &LogSource{store: store, own: true, truncated: make(map[string]bool)}, nil
}

// NewLogSource wraps an already-open store (typically read-only). The
// caller keeps ownership: Close leaves the store open.
func NewLogSource(store *streamlog.Store) *LogSource {
	return &LogSource{store: store, truncated: make(map[string]bool)}
}

// SetObserver wires the source to a tracer and/or metrics registry.
// Each served step emits a log.replay span and increments the
// log.replayed_steps counter — the same provenance signals a live
// catch-up replay produces, so traces from offline re-analysis read
// identically. The registry also gains the log.views leak gauge.
func (ls *LogSource) SetObserver(tr *obs.Tracer, reg *obs.Registry) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.tracer = tr
	if reg != nil {
		ls.replayed = reg.Counter("log.replayed_steps")
		store := ls.store
		reg.RegisterFunc("log.views", func() int64 { return int64(store.OpenViews()) })
	}
}

// Streams returns the names of every recorded stream, sorted.
func (ls *LogSource) Streams() []string { return ls.store.Streams() }

// Store returns the underlying read-only store.
func (ls *LogSource) Store() *streamlog.Store { return ls.store }

// Truncated returns the recorded streams whose replay reached a head
// with no end record — recordings that stop mid-run. Populated as
// readers hit the condition, so it is complete once every reader has
// drained. Sorted.
func (ls *LogSource) Truncated() []string {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	out := make([]string, 0, len(ls.truncated))
	for name := range ls.truncated {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (ls *LogSource) markTruncated(stream string) {
	ls.mu.Lock()
	ls.truncated[stream] = true
	ls.mu.Unlock()
}

// AttachWriter implements Transport by refusing: a recording is not
// writable, and a replayed component's outputs belong in a capture sink
// (internal/replay), not back in the source directory.
func (ls *LogSource) AttachWriter(stream string, rank, size, depth int) (WriterHandle, error) {
	return nil, fmt.Errorf("flexpath: log source is read-only; stream %q cannot accept writers (capture outputs with a replay sink)", stream)
}

// AttachReader implements Transport: an independent reader over the
// recorded stream, positioned at the retention horizon. Readers gate
// nothing and any number may be open; rank and size are accepted for
// interface parity but each handle independently sees every step, the
// same pub/sub contract a live reader group has.
func (ls *LogSource) AttachReader(stream string, rank, size int) (ReaderHandle, error) {
	ls.mu.Lock()
	closed := ls.closed
	ls.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	lg, err := ls.store.Log(stream)
	if err != nil {
		return nil, err
	}
	if _, ok := lg.Config(); !ok {
		return nil, fmt.Errorf("flexpath: recorded stream %q journaled no config (empty recording)", stream)
	}
	return &logReader{ls: ls, lg: lg, stream: stream, pos: lg.FirstStep(), curStep: -1}, nil
}

// OpenReaderFrom implements ReplayTransport: a reader positioned at an
// arbitrary recorded step, so plan-subset replays resuming mid-log use
// the same capability-checked entry point live transports offer.
func (ls *LogSource) OpenReaderFrom(stream string, from int) (ReaderHandle, error) {
	if from < 0 {
		return nil, fmt.Errorf("flexpath: replay from negative step %d", from)
	}
	r, err := ls.AttachReader(stream, 0, 1)
	if err != nil {
		return nil, err
	}
	lr := r.(*logReader)
	if from > lr.pos {
		lr.pos = from
	}
	return lr, nil
}

// Close releases the source. If the source opened its store
// (OpenLogSource), the store closes too, unmapping any segments; a
// store passed to NewLogSource stays open for its owner.
func (ls *LogSource) Close() error {
	ls.mu.Lock()
	if ls.closed {
		ls.mu.Unlock()
		return nil
	}
	ls.closed = true
	own := ls.own
	ls.mu.Unlock()
	if own {
		return ls.store.Close()
	}
	return nil
}

// logReader is one replay reader over a recorded stream. Like every
// rank handle it is driven by one goroutine at a time; the one-step
// serve cache (StepMeta fills, FetchBlock reads, ReleaseStep drops)
// holds the log's mmap view until release, exactly as ReplayReader
// does.
type logReader struct {
	ls     *LogSource
	lg     *streamlog.Log
	stream string

	mu          sync.Mutex
	pos         int
	closed      bool
	curStep     int
	curMetas    [][]byte
	curPayloads [][]byte
	curRelease  func()
}

// NextStep returns the next unreleased step — the resume point.
func (r *logReader) NextStep() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pos
}

// WriterSize returns the recorded writer-group size immediately: a
// recording's config is journaled before its first step, so there is
// nothing to wait for.
func (r *logReader) WriterSize(ctx context.Context) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrClosed
	}
	cfg, ok := r.lg.Config()
	if !ok {
		return 0, fmt.Errorf("flexpath: recorded stream %q journaled no config", r.stream)
	}
	return cfg.WriterSize, nil
}

// dropCacheLocked empties the serve cache, returning any mmap view to
// the log. Caller holds r.mu.
func (r *logReader) dropCacheLocked() {
	if rel := r.curRelease; rel != nil {
		r.curRelease = nil
		rel()
	}
	r.curStep, r.curMetas, r.curPayloads = -1, nil, nil
}

// ensure fills the serve cache for step. At the log head it returns
// io.EOF whether or not the recording ended gracefully — a truncated
// recording's valid prefix is still worth replaying — and records the
// truncation on the source for the caller to surface. Caller holds
// r.mu.
func (r *logReader) ensure(ctx context.Context, step int) error {
	if r.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if r.curStep == step {
		return nil
	}
	if step >= r.lg.NextStep() {
		if _, ended := r.lg.Ended(); !ended {
			r.ls.markTruncated(r.stream)
		}
		return io.EOF
	}
	metas, payloads, release, nbytes, err := readLogStep(r.lg, step)
	if err != nil {
		return err
	}
	r.dropCacheLocked()
	r.curStep, r.curMetas, r.curPayloads, r.curRelease = step, metas, payloads, release
	r.ls.mu.Lock()
	tracer, replayed := r.ls.tracer, r.ls.replayed
	r.ls.mu.Unlock()
	if tracer.Enabled() {
		tracer.Emit(obs.Span{Kind: obs.KindLogReplay, Parent: obs.ParentFrom(ctx),
			Stream: r.stream, Step: step, Rank: -1, Peer: -1, Bytes: nbytes})
	}
	replayed.Inc()
	return nil
}

// StepMeta serves every writer rank's metadata blob for the step. The
// slices stay valid until the step is released.
func (r *logReader) StepMeta(ctx context.Context, step int) ([][]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensure(ctx, step); err != nil {
		return nil, err
	}
	return r.curMetas, nil
}

// FetchBlock serves one writer rank's payload for the step.
func (r *logReader) FetchBlock(ctx context.Context, step, writerRank int) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensure(ctx, step); err != nil {
		return nil, err
	}
	if writerRank < 0 || writerRank >= len(r.curPayloads) {
		return nil, fmt.Errorf("flexpath: writer rank %d out of range [0,%d)", writerRank, len(r.curPayloads))
	}
	return r.curPayloads[writerRank], nil
}

// ReleaseStep advances past step and drops the serve cache, returning
// the underlying view. Nothing gates on it.
func (r *logReader) ReleaseStep(step int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if step+1 > r.pos {
		r.pos = step + 1
	}
	if r.curStep >= 0 && r.curStep <= step {
		r.dropCacheLocked()
	}
	return nil
}

// Close ends the replay session, returning any held view. Idempotent.
func (r *logReader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	r.dropCacheLocked()
	return nil
}

// Detach is Close: an observer holds no group slot to keep.
func (r *logReader) Detach() error { return r.Close() }

// Interface conformance.
var (
	_ Transport       = (*LogSource)(nil)
	_ ReplayTransport = (*LogSource)(nil)
	_ ReaderHandle    = (*logReader)(nil)
)
