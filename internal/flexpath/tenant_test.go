package flexpath

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/streamlog"
)

func TestSplitTenant(t *testing.T) {
	cases := []struct{ in, tenant, name string }{
		{"velos.fp", "", "velos.fp"},
		{"alice/velos.fp", "alice", "velos.fp"},
		{"alice/a/b", "alice", "a/b"},
		{"/x", "", "x"},
	}
	for _, c := range cases {
		tenant, name := SplitTenant(c.in)
		if tenant != c.tenant || name != c.name {
			t.Errorf("SplitTenant(%q) = %q, %q, want %q, %q", c.in, tenant, name, c.tenant, c.name)
		}
	}
	if err := ValidTenant("alice-2"); err != nil {
		t.Errorf("ValidTenant(alice-2): %v", err)
	}
	for _, bad := range []string{"", "a/b", "a b", "a\x00"} {
		if err := ValidTenant(bad); err == nil {
			t.Errorf("ValidTenant(%q) accepted", bad)
		}
	}
}

func TestNamespacedTransportQualifiesStreams(t *testing.T) {
	b := NewBroker()
	nt, err := Namespaced(InProc{B: b}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	w, err := nt.AttachWriter("s", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.PublishBlock(context.Background(), 0, []byte("m"), []byte("p")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stats := b.StreamStats()
	if len(stats) != 1 || stats[0].Name != "alice/s" {
		t.Fatalf("broker streams = %+v, want one stream alice/s", stats)
	}
	r, err := nt.AttachReader("s", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := r.StepMeta(context.Background(), 0)
	if err != nil || string(metas[0]) != "m" {
		t.Fatalf("StepMeta = %q, %v", metas, err)
	}
	if _, err := Namespaced(InProc{B: b}, "a/b"); err == nil {
		t.Fatal("Namespaced accepted a tenant with a separator")
	}
}

func TestTenantQuotaMaxStreamsAndQueueDepth(t *testing.T) {
	b := NewBroker()
	if err := b.SetTenantQuota("q", TenantQuota{MaxStreams: 1, MaxQueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AttachWriter("q/a", 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Second stream: over the cap, clean retryable quota error.
	_, err := b.AttachWriter("q/b", 0, 1, 0)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("stream cap: err = %v, want ErrQuotaExceeded", err)
	}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatalf("quota rejection is not transient: %v", err)
	}
	// Re-attach to the existing stream is not a new stream.
	if _, err := b.AttachReader("q/a", 0, 1); err != nil {
		t.Fatalf("reader attach to existing stream rejected: %v", err)
	}
	// Queue depth beyond the cap.
	if _, err := b.AttachWriter("q/a", 0, 1, 5); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("queue depth cap: err = %v, want ErrQuotaExceeded", err)
	}
	// Other tenants are unaffected.
	if _, err := b.AttachWriter("other/x", 0, 1, 5); err != nil {
		t.Fatalf("unregistered tenant rejected: %v", err)
	}
}

func TestTenantQuotaMaxBytes(t *testing.T) {
	b := NewBroker()
	if err := b.SetTenantQuota("q", TenantQuota{MaxBytes: 24}); err != nil {
		t.Fatal(err)
	}
	w, err := b.AttachWriter("q/s", 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := w.PublishBlock(ctx, 0, []byte("12345678"), []byte("12345678")); err != nil {
		t.Fatalf("first publish (16 bytes) rejected: %v", err)
	}
	err = w.PublishBlock(ctx, 1, []byte("12345678"), []byte("12345678"))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota publish: err = %v, want ErrQuotaExceeded", err)
	}
	// Draining the backlog clears the rejection: a reader releases step 0.
	r, err := b.AttachReader("q/s", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StepMeta(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseStep(0); err != nil {
		t.Fatal(err)
	}
	if err := w.PublishBlock(ctx, 1, []byte("12345678"), []byte("12345678")); err != nil {
		t.Fatalf("publish after drain still rejected: %v", err)
	}
	stats := b.TenantStats()
	if len(stats) != 1 || stats[0].Tenant != "q" || stats[0].Streams != 1 {
		t.Fatalf("TenantStats = %+v", stats)
	}
	if stats[0].BytesLive != 16 {
		t.Fatalf("BytesLive = %d, want 16", stats[0].BytesLive)
	}
}

func TestTenantQuotaAdoptsExistingStreams(t *testing.T) {
	b := NewBroker()
	w, err := b.AttachWriter("late/s", 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.PublishBlock(context.Background(), 0, []byte("meta"), []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Quota arrives after the stream exists: footprint is adopted.
	if err := b.SetTenantQuota("late", TenantQuota{MaxBytes: 8}); err != nil {
		t.Fatal(err)
	}
	st := b.TenantStats()[0]
	if st.Streams != 1 || st.BytesLive != 8 {
		t.Fatalf("adopted stats = %+v, want 1 stream / 8 bytes", st)
	}
	if err := w.PublishBlock(context.Background(), 1, []byte("meta"), []byte("data")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("publish after adoption: err = %v, want ErrQuotaExceeded", err)
	}
}

func TestEvictTenantDrainsBeforeClose(t *testing.T) {
	b := NewBroker()
	b.SetObserver(nil, obs.NewRegistry())
	if err := b.SetTenantQuota("ev", TenantQuota{}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w, err := b.AttachWriter("ev/s", 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.AttachReader("ev/s", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		if err := w.PublishBlock(ctx, step, []byte("m"), []byte{byte(step)}); err != nil {
			t.Fatal(err)
		}
	}

	evicted := make(chan error, 1)
	go func() { evicted <- b.EvictTenant(ctx, "ev") }()

	// Eviction must not complete while the reader still gates buffered
	// steps — and the reader must stay fully served, not severed.
	select {
	case err := <-evicted:
		t.Fatalf("eviction completed before the reader drained (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	// New work in the namespace is refused while the drain runs.
	if _, err := b.AttachWriter("ev/new", 0, 1, 0); !errors.Is(err, ErrTenantEvicted) {
		t.Fatalf("attach during eviction: err = %v, want ErrTenantEvicted", err)
	}
	if err := w.PublishBlock(ctx, 3, []byte("m"), []byte("x")); !errors.Is(err, ErrTenantEvicted) {
		t.Fatalf("publish during eviction: err = %v, want ErrTenantEvicted", err)
	}
	for step := 0; step < 3; step++ {
		if _, err := r.StepMeta(ctx, step); err != nil {
			t.Fatalf("reader severed at step %d during eviction: %v", step, err)
		}
		if blk, err := r.FetchBlock(ctx, step, 0); err != nil || blk[0] != byte(step) {
			t.Fatalf("fetch step %d during eviction: %q, %v", step, blk, err)
		}
		if err := r.ReleaseStep(step); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-evicted:
		if err != nil {
			t.Fatalf("eviction failed after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("eviction did not complete after the reader drained")
	}
	// The namespace's streams ended gracefully and are gone.
	if _, err := r.StepMeta(ctx, 3); err != io.EOF {
		t.Fatalf("reader past eviction: err = %v, want io.EOF", err)
	}
	if n := len(b.StreamStats()); n != 0 {
		t.Fatalf("%d stream(s) survived eviction", n)
	}
	if len(b.TenantStats()) != 0 {
		t.Fatal("tenant registration survived eviction")
	}
}

func TestEvictTenantUnblocksParkedWriter(t *testing.T) {
	b := NewBroker()
	ctx := context.Background()
	w, err := b.AttachWriter("park/s", 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.AttachReader("park/s", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.PublishBlock(ctx, 0, []byte("m"), []byte("p")); err != nil {
		t.Fatal(err)
	}
	pubErr := make(chan error, 1)
	go func() {
		// Queue window full (depth 1, step 0 unreleased): parks.
		pubErr <- w.PublishBlock(ctx, 1, []byte("m"), []byte("p"))
	}()
	time.Sleep(20 * time.Millisecond)
	evictCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- b.EvictTenant(evictCtx, "park") }()
	select {
	case err := <-pubErr:
		if !errors.Is(err, ErrTenantEvicted) {
			t.Fatalf("parked publish: err = %v, want ErrTenantEvicted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("eviction left the parked writer blocked")
	}
	// The reader still gates the accepted step; drain it so the
	// eviction can complete.
	if err := r.ReleaseStep(0); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("eviction: %v", err)
	}
}

func TestEvictTenantNoReadersWaitsForDurability(t *testing.T) {
	dir := t.TempDir()
	store, err := streamlog.OpenStore(dir, streamlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	b := NewBroker()
	b.AttachLog(store)
	ctx := context.Background()
	w, err := b.AttachWriter("dur/s", 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		if err := w.PublishBlock(ctx, step, []byte("m"), []byte{byte(step)}); err != nil {
			t.Fatal(err)
		}
	}
	// No reader group: eviction drains through the durability watermark
	// (the write-behind appender catching up), not reader releases.
	evictCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := b.EvictTenant(evictCtx, "dur"); err != nil {
		t.Fatalf("eviction: %v", err)
	}
	// Everything published made it to disk before memory was freed.
	lg, err := store.Log("dur/s")
	if err != nil {
		t.Fatal(err)
	}
	if lg.NextStep() != 3 {
		t.Fatalf("log holds steps [..%d), want [..3): eviction freed undurable steps", lg.NextStep())
	}
}

func TestTenantQuotaCountsLogBytes(t *testing.T) {
	dir := t.TempDir()
	store, err := streamlog.OpenStore(dir, streamlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	b := NewBroker()
	b.AttachLog(store)
	if err := b.SetTenantQuota("lg", TenantQuota{MaxBytes: 256}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w, err := b.AttachWriter("lg/s", 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.AttachReader("lg/s", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Publish-and-release until the durable log footprint alone trips
	// the quota: every step retires (bytesLive returns to 0), so only
	// the stream log's retention accounting can accumulate.
	var quotaErr error
	for step := 0; step < 1000; step++ {
		err := w.PublishBlock(ctx, step, []byte("metadata"), []byte("payloadpayload"))
		if err != nil {
			quotaErr = err
			break
		}
		if _, err := r.StepMeta(ctx, step); err != nil {
			t.Fatal(err)
		}
		if err := r.ReleaseStep(step); err != nil {
			t.Fatal(err)
		}
	}
	if !errors.Is(quotaErr, ErrQuotaExceeded) {
		t.Fatalf("log-byte accounting never tripped the quota: %v", quotaErr)
	}
}
