package flexpath

import (
	"context"
	"testing"
)

// benchExchange pushes b.N one-megabyte timesteps through a 1-writer,
// 1-reader stream on the given attach functions.
func benchExchange(b *testing.B, attachW func() (interface {
	PublishBlock(ctx context.Context, step int, meta, payload []byte) error
	Close() error
}, error), attachR func() (interface {
	StepMeta(ctx context.Context, step int) ([][]byte, error)
	FetchBlock(ctx context.Context, step, writerRank int) ([]byte, error)
	ReleaseStep(step int) error
	Close() error
}, error)) {
	b.Helper()
	payload := make([]byte, 1<<20)
	b.SetBytes(int64(len(payload)))
	w, err := attachW()
	if err != nil {
		b.Fatal(err)
	}
	r, err := attachR()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		for s := 0; s < b.N; s++ {
			if err := w.PublishBlock(ctx, s, nil, payload); err != nil {
				done <- err
				return
			}
		}
		done <- w.Close()
	}()
	b.ResetTimer()
	for s := 0; s < b.N; s++ {
		if _, err := r.StepMeta(ctx, s); err != nil {
			b.Fatal(err)
		}
		if _, err := r.FetchBlock(ctx, s, 0); err != nil {
			b.Fatal(err)
		}
		if err := r.ReleaseStep(s); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	r.Close()
}

func BenchmarkInprocExchange1MB(b *testing.B) {
	b.ReportAllocs()
	broker := NewBroker()
	benchExchange(b,
		func() (interface {
			PublishBlock(ctx context.Context, step int, meta, payload []byte) error
			Close() error
		}, error) {
			return broker.AttachWriter("bench.fp", 0, 1, 2)
		},
		func() (interface {
			StepMeta(ctx context.Context, step int) ([][]byte, error)
			FetchBlock(ctx context.Context, step, writerRank int) ([]byte, error)
			ReleaseStep(step int) error
			Close() error
		}, error) {
			return broker.AttachReader("bench.fp", 0, 1)
		})
}

func BenchmarkTCPExchange1MB(b *testing.B) {
	b.ReportAllocs()
	srv, err := NewServer(NewBroker(), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := Dial(srv.Addr())
	defer client.Close()
	benchExchange(b,
		func() (interface {
			PublishBlock(ctx context.Context, step int, meta, payload []byte) error
			Close() error
		}, error) {
			return client.AttachWriter("bench.fp", 0, 1, 2)
		},
		func() (interface {
			StepMeta(ctx context.Context, step int) ([][]byte, error)
			FetchBlock(ctx context.Context, step, writerRank int) ([]byte, error)
			ReleaseStep(step int) error
			Close() error
		}, error) {
			return client.AttachReader("bench.fp", 0, 1)
		})
}
