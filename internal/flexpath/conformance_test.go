package flexpath_test

import (
	"net"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/flexpath"
	"repro/internal/flexpath/conformance"
)

// Each backend is one registration call against the shared contract
// suite; everything these tests prove is defined once in
// internal/flexpath/conformance. Backend-specific behavior that the
// contract cannot express (heartbeat leases, unclean-disconnect
// inference, checksum rejection, dial backoff) stays in the
// backend-local test files.

func TestConformanceInproc(t *testing.T) {
	conformance.Run(t, func(t *testing.T) conformance.Backend {
		b := flexpath.NewBroker()
		return conformance.Backend{Transport: flexpath.InProc{B: b}, Broker: b}
	})
}

func TestConformanceTCP(t *testing.T) {
	conformance.Run(t, func(t *testing.T) conformance.Backend {
		b := flexpath.NewBroker()
		srv, err := flexpath.NewServer(b, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c := flexpath.Dial(srv.Addr())
		t.Cleanup(func() { c.Close() })
		return conformance.Backend{Transport: flexpath.Remote{C: c}, Broker: b}
	})
}

func TestConformanceUDS(t *testing.T) {
	requireUnixSockets(t)
	conformance.Run(t, func(t *testing.T) conformance.Backend {
		b := flexpath.NewBroker()
		path := udsPath(t)
		srv, err := flexpath.NewUnixServer(b, path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c := flexpath.DialUnix(path)
		t.Cleanup(func() { c.Close() })
		return conformance.Backend{Transport: flexpath.Remote{C: c}, Broker: b}
	})
}

func TestConformanceShm(t *testing.T) {
	requireUnixSockets(t)
	requireShm(t)
	conformance.Run(t, func(t *testing.T) conformance.Backend {
		sbe, cleanup, err := makeShmBackend(flexpath.ShmConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cleanup)
		sbe.MakeShm = func(cfg flexpath.ShmConfig) (conformance.Backend, func(), error) {
			return makeShmBackend(cfg)
		}
		return sbe
	})
}

// makeShmBackend builds an isolated broker + shm doorbell server pair
// with its own segment file, so shm-specific checks can pick ring
// geometry without disturbing the suite-wide backend.
func makeShmBackend(cfg flexpath.ShmConfig) (conformance.Backend, func(), error) {
	dir, err := os.MkdirTemp("", "sbshm")
	if err != nil {
		return conformance.Backend{}, nil, err
	}
	b := flexpath.NewBroker()
	srv, err := flexpath.NewShmServer(b, filepath.Join(dir, "b.sock"), cfg)
	if err != nil {
		os.RemoveAll(dir)
		return conformance.Backend{}, nil, err
	}
	tr := flexpath.DialShmConfig(filepath.Join(dir, "b.sock"), cfg)
	cleanup := func() {
		tr.Close()
		srv.Close()
		os.RemoveAll(dir)
	}
	return conformance.Backend{Transport: tr, Broker: b}, cleanup, nil
}

// requireShm skips on platforms where the shm transport's shared file
// mapping is unavailable, probed by standing up a real segment.
func requireShm(t *testing.T) {
	t.Helper()
	dir, err := os.MkdirTemp("", "sbshm")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	srv, err := flexpath.NewShmServer(flexpath.NewBroker(), filepath.Join(dir, "probe.sock"), flexpath.ShmConfig{})
	if err != nil {
		t.Skipf("platform without shm segment support: %v", err)
	}
	srv.Close()
}

// udsPath returns a socket path short enough for the AF_UNIX sun_path
// limit (~104 bytes). t.TempDir embeds the full subtest name and can
// blow past it, so a dedicated short-prefix temp dir is used instead.
func udsPath(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "sbuds")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return filepath.Join(dir, "b.sock")
}

// requireUnixSockets skips on platforms without AF_UNIX support, probed
// directly rather than inferred from GOOS.
func requireUnixSockets(t *testing.T) {
	t.Helper()
	dir, err := os.MkdirTemp("", "sbuds")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ln, err := net.Listen("unix", filepath.Join(dir, "probe.sock"))
	if err != nil {
		t.Skipf("platform without AF_UNIX support: %v", err)
	}
	ln.Close()
}
