package sb

// This file defines the port-introspection contract the workflow plan IR
// is built on. A component's ports are the streams it subscribes to and
// publishes, each with the primary array it carries — declared from the
// component's parsed arguments, before anything runs. Where the older
// StreamDeclarer contract (workflow.Lint) yields bare stream names, a
// Port also names the array, which is what lets the planner check that
// two fused kernels actually hand the same variable to each other
// instead of merely meeting on a stream.

// PortDir distinguishes subscription from publication.
type PortDir int

const (
	// PortIn marks a stream the component subscribes to.
	PortIn PortDir = iota
	// PortOut marks a stream the component publishes.
	PortOut
)

// String renders the direction for plan output.
func (d PortDir) String() string {
	if d == PortIn {
		return "in"
	}
	return "out"
}

// Port is one end of a dataflow edge: a stream the component attaches
// to, the primary array it reads or writes there, and the direction.
type Port struct {
	Dir    PortDir
	Stream string
	// Array is the primary variable on the stream, or "" when the
	// component cannot name it statically (e.g. a pass-through that
	// republishes whatever arrives).
	Array string
}

// PortDeclarer is optionally implemented by components that can state,
// from their parsed arguments alone, exactly which streams they attach
// to. The workflow planner computes dataflow edges from these
// declarations — edges are derived, never guessed from launch-line
// order.
type PortDeclarer interface {
	Ports() []Port
}

// In filters ports to the subscriptions, preserving declaration order.
func In(ports []Port) []Port {
	var out []Port
	for _, p := range ports {
		if p.Dir == PortIn {
			out = append(out, p)
		}
	}
	return out
}

// Out filters ports to the publications, preserving declaration order.
func Out(ports []Port) []Port {
	var out []Port
	for _, p := range ports {
		if p.Dir == PortOut {
			out = append(out, p)
		}
	}
	return out
}
