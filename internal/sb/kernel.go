package sb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/adios"
	"repro/internal/ndarray"
	"repro/internal/obs"
)

// StepInput is what a map-style kernel sees each timestep on each rank:
// the step's self-describing metadata, the variable it operates on, the
// bounding box this rank was assigned, and the block read from it.
type StepInput struct {
	Info  *adios.StepInfo
	Var   *adios.GlobalVar
	Box   ndarray.Box
	Block *ndarray.Array
	Env   *Env
	// Reader is the step's open reader, for kernels that need data beyond
	// their own partition (e.g. AllPairs re-reads the shared sample).
	Reader *adios.Reader
}

// StepOutput is a kernel's locally computed result: this rank's block of
// the output array, its position in the output global space, and any
// attributes to attach downstream.
type StepOutput struct {
	GlobalDims []ndarray.Dim
	Box        ndarray.Box
	Data       []float64
	Attrs      map[string]string
}

// MapKernel is the contract shared by the paper's data-transformation
// components (Select, Magnitude, Dim-Reduce): a purely local, per-rank
// transformation of a partitioned block, where the global output layout
// is derivable from the global input layout.
type MapKernel interface {
	// ReservedAxes lists input axes that must not be partitioned (for
	// example, the axis Select filters). May return nil.
	ReservedAxes(v *adios.GlobalVar, info *adios.StepInfo) ([]int, error)
	// Transform computes this rank's output block from its input block.
	Transform(in *StepInput) (*StepOutput, error)
}

// MapConfig wires a MapKernel into a runnable component.
type MapConfig struct {
	// Name of the component kind, for errors and metrics.
	Name string
	// InStream / InArray identify the input.
	InStream, InArray string
	// OutStream / OutArray identify the output.
	OutStream, OutArray string
	// Policy selects the partition axis (default PartitionFirstFree).
	Policy PartitionPolicy
	// ForwardAttrs propagates all upstream attributes downstream unless
	// the kernel overrides them — the paper's guideline of maintaining
	// high-level semantics through components that do not require them
	// (§III-A3).
	ForwardAttrs bool
}

// RunMap executes the shared per-rank loop of a map-style component:
// attach to the input and output streams, and for every timestep read
// this rank's partition, transform it, and republish — until the input
// stream ends. It records one Metrics sample per timestep.
func RunMap(env *Env, cfg MapConfig, kernel MapKernel) error {
	if env.Metrics != nil {
		env.Metrics.MarkStarted()
		defer env.Metrics.MarkFinished()
	}
	r, err := env.OpenReader(cfg.InStream)
	if err != nil {
		return fmt.Errorf("%s: attaching reader to %q: %w", cfg.Name, cfg.InStream, err)
	}
	defer r.Close()
	w, err := env.OpenWriter(cfg.OutStream)
	if err != nil {
		return fmt.Errorf("%s: attaching writer to %q: %w", cfg.Name, cfg.OutStream, err)
	}
	defer w.Close()

	tr := env.Tracer
	for {
		// Step boundary: the elastic-rescale supervisor interrupts here,
		// after the previous step fully settled and before any work on the
		// next, so a detach leaves nothing half-published.
		if env.Interrupt != nil {
			if err := env.Interrupt(); err != nil {
				// The supervisor will detach the handles; keep the defer
				// chain's graceful closes from ending the streams first.
				env.Handles.Suspend()
				return err
			}
		}
		step := r.NextStep() // absolute: a re-attached reader resumes mid-stream
		// The stage.step span's ID is allocated up front and carried down
		// into every transport call via the step context, so the fabric's
		// publish/fetch spans nest under this stage's step. The span itself
		// is emitted once the step settles — successfully or not — so a
		// trace never contains a child whose parent was lost to a failure.
		ctx := env.Ctx()
		var stepSpan obs.SpanID
		var stepStart int64
		if tr.Enabled() {
			stepSpan = tr.NextID()
			ctx = obs.WithParent(ctx, stepSpan)
			stepStart = tr.Now()
		}
		eof, active, bytesIn, bytesOut, err := runMapStep(env, cfg, kernel, r, w, ctx, step, stepSpan)
		if eof {
			env.logf("%s rank %d: input stream %q ended after %d steps", cfg.Name, env.Comm.Rank(), cfg.InStream, step)
			return nil
		}
		if tr.Enabled() {
			span := obs.Span{ID: stepSpan, Kind: obs.KindStageStep,
				Stream: cfg.InStream, Step: step, Rank: env.Comm.Rank(), Peer: -1,
				Bytes: bytesIn, Epoch: env.Epoch, Note: cfg.Name, Start: stepStart}
			if err != nil {
				span.Err = err.Error()
			}
			tr.Emit(span)
		}
		if err != nil {
			return err
		}
		if env.Metrics != nil {
			env.Metrics.RecordStep(step, active, bytesIn, bytesOut)
		}
	}
}

// runMapStep executes one timestep of the RunMap loop: wait for the
// step, read this rank's partition, transform, republish (unless the
// resumed writer already has), release. It reports end-of-stream via
// eof, the step's active duration (excluding the wait for the
// producer), and the payload bytes moved.
//
// The body is a composition of the kernel seam below — partitionFor,
// transformKernel, publishOutput — the same pieces the fused runner
// (fuse.go) chains back-to-back without the intermediate stream hop.
func runMapStep(env *Env, cfg MapConfig, kernel MapKernel, r *adios.Reader, w *adios.Writer,
	ctx context.Context, step int, stepSpan obs.SpanID) (eof bool, active time.Duration, bytesIn, bytesOut int64, err error) {
	rank, size := env.Comm.Rank(), env.Comm.Size()
	fail := func(e error) (bool, time.Duration, int64, int64, error) {
		return false, 0, bytesIn, bytesOut, fmt.Errorf("%s: step %d: %w", cfg.Name, step, e)
	}
	info, err := r.BeginStep(ctx)
	if errors.Is(err, io.EOF) {
		return true, 0, 0, 0, nil
	}
	if err != nil {
		return fail(err)
	}
	begin := time.Now() // active time: excludes waiting for the producer
	v, ok := info.Var(cfg.InArray)
	if !ok {
		return false, 0, 0, 0, fmt.Errorf("%s: step %d of stream %q has no array %q", cfg.Name, step, cfg.InStream, cfg.InArray)
	}
	box, err := partitionFor(kernel, cfg.Policy, v, info, size, rank)
	if err != nil {
		return fail(err)
	}
	block, err := r.ReadBox(ctx, cfg.InArray, box)
	if err != nil {
		return fail(err)
	}
	bytesIn = int64(block.Size() * 8)
	out, err := transformKernel(env, cfg.Name, cfg.InStream, kernel, stepSpan, step,
		&StepInput{Info: info, Var: v, Box: box, Block: block, Env: env, Reader: r})
	if err != nil {
		return fail(err)
	}
	bytesOut = int64(len(out.Data) * 8)
	if err := publishOutput(env, cfg, w, ctx, step, info.Attrs, out); err != nil {
		return fail(err)
	}
	if err := r.EndStep(); err != nil {
		return fail(err)
	}
	return false, time.Since(begin), bytesIn, bytesOut, nil
}

// partitionFor computes the box one rank reads of variable v for the
// given kernel: the kernel reserves axes that must stay whole, the
// policy picks the partition axis among the rest.
func partitionFor(kernel MapKernel, policy PartitionPolicy, v *adios.GlobalVar, info *adios.StepInfo, size, rank int) (ndarray.Box, error) {
	reserved, err := kernel.ReservedAxes(v, info)
	if err != nil {
		return ndarray.Box{}, err
	}
	axis, err := ChooseAxis(policy, v.Shape(), reserved...)
	if err != nil {
		return ndarray.Box{}, err
	}
	return PartitionBox(v.Shape(), axis, size, rank), nil
}

// transformKernel runs one kernel Transform with its kernel.transform
// span, emitted under stepSpan whether the call succeeds or fails.
func transformKernel(env *Env, name, stream string, kernel MapKernel, stepSpan obs.SpanID, step int, in *StepInput) (*StepOutput, error) {
	tr := env.Tracer
	var kStart int64
	if tr.Enabled() {
		kStart = tr.Now()
	}
	out, err := kernel.Transform(in)
	if tr.Enabled() {
		span := obs.Span{Kind: obs.KindKernelTransform, Parent: stepSpan,
			Stream: stream, Step: step, Rank: env.Comm.Rank(), Peer: -1,
			Bytes: int64(in.Block.Size() * 8), Epoch: env.Epoch, Note: name, Start: kStart}
		if err != nil {
			span.Err = err.Error()
		}
		tr.Emit(span)
	}
	return out, err
}

// publishOutput republishes one kernel output downstream with
// exactly-once semantics: a restarted rank that crashed between
// publishing step N and releasing its input re-reads step N but must
// not publish it twice — the resumed writer is already past it.
// upstreamAttrs are forwarded first when the config asks for it, then
// the kernel's own attributes override.
func publishOutput(env *Env, cfg MapConfig, w *adios.Writer, ctx context.Context, step int,
	upstreamAttrs map[string]string, out *StepOutput) error {
	if w.Steps() > step {
		return nil
	}
	if err := w.BeginStep(); err != nil {
		return err
	}
	if cfg.ForwardAttrs {
		for k, val := range upstreamAttrs {
			if err := w.SetAttribute(k, val); err != nil {
				return err
			}
		}
	}
	for k, val := range out.Attrs {
		if err := w.SetAttribute(k, val); err != nil {
			return err
		}
	}
	if err := w.Write(cfg.OutArray, out.GlobalDims, out.Box, out.Data); err != nil {
		return err
	}
	return w.EndStep(ctx)
}
