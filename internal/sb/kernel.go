package sb

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/adios"
	"repro/internal/ndarray"
)

// StepInput is what a map-style kernel sees each timestep on each rank:
// the step's self-describing metadata, the variable it operates on, the
// bounding box this rank was assigned, and the block read from it.
type StepInput struct {
	Info  *adios.StepInfo
	Var   *adios.GlobalVar
	Box   ndarray.Box
	Block *ndarray.Array
	Env   *Env
	// Reader is the step's open reader, for kernels that need data beyond
	// their own partition (e.g. AllPairs re-reads the shared sample).
	Reader *adios.Reader
}

// StepOutput is a kernel's locally computed result: this rank's block of
// the output array, its position in the output global space, and any
// attributes to attach downstream.
type StepOutput struct {
	GlobalDims []ndarray.Dim
	Box        ndarray.Box
	Data       []float64
	Attrs      map[string]string
}

// MapKernel is the contract shared by the paper's data-transformation
// components (Select, Magnitude, Dim-Reduce): a purely local, per-rank
// transformation of a partitioned block, where the global output layout
// is derivable from the global input layout.
type MapKernel interface {
	// ReservedAxes lists input axes that must not be partitioned (for
	// example, the axis Select filters). May return nil.
	ReservedAxes(v *adios.GlobalVar, info *adios.StepInfo) ([]int, error)
	// Transform computes this rank's output block from its input block.
	Transform(in *StepInput) (*StepOutput, error)
}

// MapConfig wires a MapKernel into a runnable component.
type MapConfig struct {
	// Name of the component kind, for errors and metrics.
	Name string
	// InStream / InArray identify the input.
	InStream, InArray string
	// OutStream / OutArray identify the output.
	OutStream, OutArray string
	// Policy selects the partition axis (default PartitionFirstFree).
	Policy PartitionPolicy
	// ForwardAttrs propagates all upstream attributes downstream unless
	// the kernel overrides them — the paper's guideline of maintaining
	// high-level semantics through components that do not require them
	// (§III-A3).
	ForwardAttrs bool
}

// RunMap executes the shared per-rank loop of a map-style component:
// attach to the input and output streams, and for every timestep read
// this rank's partition, transform it, and republish — until the input
// stream ends. It records one Metrics sample per timestep.
func RunMap(env *Env, cfg MapConfig, kernel MapKernel) error {
	if env.Metrics != nil {
		env.Metrics.MarkStarted()
		defer env.Metrics.MarkFinished()
	}
	r, err := env.OpenReader(cfg.InStream)
	if err != nil {
		return fmt.Errorf("%s: attaching reader to %q: %w", cfg.Name, cfg.InStream, err)
	}
	defer r.Close()
	w, err := env.OpenWriter(cfg.OutStream)
	if err != nil {
		return fmt.Errorf("%s: attaching writer to %q: %w", cfg.Name, cfg.OutStream, err)
	}
	defer w.Close()

	rank, size := env.Comm.Rank(), env.Comm.Size()
	for {
		step := r.NextStep() // absolute: a re-attached reader resumes mid-stream
		info, err := r.BeginStep(env.Ctx())
		if errors.Is(err, io.EOF) {
			env.logf("%s rank %d: input stream %q ended after %d steps", cfg.Name, rank, cfg.InStream, step)
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		begin := time.Now() // active time: excludes waiting for the producer
		v, ok := info.Var(cfg.InArray)
		if !ok {
			return fmt.Errorf("%s: step %d of stream %q has no array %q", cfg.Name, step, cfg.InStream, cfg.InArray)
		}
		reserved, err := kernel.ReservedAxes(v, info)
		if err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		axis, err := ChooseAxis(cfg.Policy, v.Shape(), reserved...)
		if err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		box := PartitionBox(v.Shape(), axis, size, rank)
		block, err := r.ReadBox(env.Ctx(), cfg.InArray, box)
		if err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		out, err := kernel.Transform(&StepInput{Info: info, Var: v, Box: box, Block: block, Env: env, Reader: r})
		if err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		// Exactly-once republish: a restarted rank that crashed between
		// publishing step N and releasing its input re-reads step N but
		// must not publish it twice — the resumed writer is already past it.
		if w.Steps() <= step {
			if err := w.BeginStep(); err != nil {
				return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
			}
			if cfg.ForwardAttrs {
				for k, val := range info.Attrs {
					if err := w.SetAttribute(k, val); err != nil {
						return err
					}
				}
			}
			for k, val := range out.Attrs {
				if err := w.SetAttribute(k, val); err != nil {
					return err
				}
			}
			if err := w.Write(cfg.OutArray, out.GlobalDims, out.Box, out.Data); err != nil {
				return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
			}
			if err := w.EndStep(env.Ctx()); err != nil {
				return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
			}
		}
		if err := r.EndStep(); err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		if env.Metrics != nil {
			env.Metrics.RecordStep(step, time.Since(begin),
				int64(block.Size()*8), int64(len(out.Data)*8))
		}
	}
}
