// Package sb is the SmartBlock component framework — the paper's primary
// contribution (§III). It defines what a generic, reusable in situ
// workflow component is in this reproduction:
//
//   - a Component is an SPMD body executed by every rank of its own
//     communicator (package mpi), configured entirely through run-time
//     string arguments — never recompiled per workflow;
//
//   - every rank receives an Env giving it the component's communicator,
//     the stream transport, its arguments, and a metrics collector;
//
//   - components exchange self-describing timesteps (package adios) over
//     named streams (package flexpath), discover the global shape of what
//     they receive, and partition it evenly across their ranks with
//     bounding-box selections.
//
// The RunMap loop in kernel.go captures the shared shape of the paper's
// data-transformation components (Select, Magnitude, Dim-Reduce): read a
// partitioned block, transform it locally, republish. Components with
// different shapes (Histogram's reduction to a file, the all-in-one
// baseline) implement Component directly.
package sb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/adios"
	"repro/internal/flexpath"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// ErrRescale is returned from a component's step loop when the
// supervisor's Env.Interrupt hook requests an elastic rescale: the rank
// stops at the current step boundary so its handles can be detached and
// the stage relaunched with a different rank count. It is a control
// signal, not a failure.
var ErrRescale = errors.New("sb: stage rescale requested")

// Transport is the stream fabric a component attaches to. Both the
// in-process broker and the TCP client satisfy it.
type Transport interface {
	// AttachWriter joins the writer group of a stream as rank of size,
	// with the given queue depth (0 = transport default).
	AttachWriter(stream string, rank, size, depth int) (adios.BlockWriter, error)
	// AttachReader joins the reader group of a stream as rank of size.
	AttachReader(stream string, rank, size int) (adios.BlockReader, error)
}

// BrokerTransport adapts the in-process flexpath.Broker to Transport.
type BrokerTransport struct {
	Broker *flexpath.Broker
}

// AttachWriter implements Transport.
func (t BrokerTransport) AttachWriter(stream string, rank, size, depth int) (adios.BlockWriter, error) {
	w, err := t.Broker.AttachWriter(stream, rank, size, depth)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// AttachReader implements Transport.
func (t BrokerTransport) AttachReader(stream string, rank, size int) (adios.BlockReader, error) {
	r, err := t.Broker.AttachReader(stream, rank, size)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Fabric adapts any flexpath.Transport — the formal multi-backend
// contract (inproc, tcp, uds) — to the component-facing Transport.
// BrokerTransport and ClientTransport predate the interface and remain
// for direct construction; code that selects a backend at run time
// (flexpath.Open) wraps the result in a Fabric.
type Fabric struct {
	T flexpath.Transport
}

// AttachWriter implements Transport.
func (f Fabric) AttachWriter(stream string, rank, size, depth int) (adios.BlockWriter, error) {
	w, err := f.T.AttachWriter(stream, rank, size, depth)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// AttachReader implements Transport.
func (f Fabric) AttachReader(stream string, rank, size int) (adios.BlockReader, error) {
	r, err := f.T.AttachReader(stream, rank, size)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// ClientTransport adapts a TCP flexpath.Client to Transport, letting a
// component process attach to a broker served in another process.
type ClientTransport struct {
	Client *flexpath.Client
}

// AttachWriter implements Transport.
func (t ClientTransport) AttachWriter(stream string, rank, size, depth int) (adios.BlockWriter, error) {
	w, err := t.Client.AttachWriter(stream, rank, size, depth)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// AttachReader implements Transport.
func (t ClientTransport) AttachReader(stream string, rank, size int) (adios.BlockReader, error) {
	r, err := t.Client.AttachReader(stream, rank, size)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Env is the per-rank runtime environment of a component.
type Env struct {
	// Comm is the component's communicator; the rank runs as Comm.Rank()
	// of Comm.Size().
	Comm *mpi.Comm
	// Transport is the stream fabric shared by the whole workflow.
	Transport Transport
	// Args are the component's run-time arguments, exactly as they would
	// appear after the executable name in the paper's aprun lines.
	Args []string
	// QueueDepth configures writer-side buffering for streams this
	// component publishes (0 = transport default).
	QueueDepth int
	// Handles, when non-nil, routes this rank's transport handles through
	// the workflow supervisor's lifecycle (see HandleSet): closes after a
	// failure are deferred so the supervisor can detach (restart) or
	// crash (propagate) instead, and re-attached handles resume at the
	// transport's reported NextStep. Nil leaves handle lifecycle entirely
	// to the component — the unsupervised behavior.
	Handles *HandleSet
	// StepTimeout, when positive, bounds every blocking transport
	// operation of a managed handle (publish, step wait, fetch). It only
	// applies when Handles is set.
	StepTimeout time.Duration
	// Metrics, when non-nil, collects per-timestep measurements.
	Metrics *Metrics
	// Tracer, when non-nil, receives per-step spans (stage.step,
	// kernel.transform) from this rank, and its span IDs flow down into
	// the transport via the step context so fabric spans nest under the
	// stage's. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Registry, when non-nil, is the metrics registry this component's
	// collectors mirror into (see Metrics.BindRegistry).
	Registry *obs.Registry
	// Epoch is the supervised restart attempt this rank is running as
	// (0 = first incarnation). Stamped onto emitted spans so a trace can
	// distinguish pre- and post-restart work.
	Epoch int
	// Interrupt, when non-nil, is polled by step-loop components at each
	// step boundary (after finishing a step, before starting the next).
	// A non-nil return aborts the loop with that error — the elastic
	// rescale path returns ErrRescale here so the supervisor can detach
	// the stage cleanly between steps and relaunch it at a new size.
	Interrupt func() error
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
}

// Ctx returns the cancellation context governing this rank.
func (e *Env) Ctx() context.Context { return e.Comm.Context() }

func (e *Env) logf(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// OpenReader attaches this rank to a stream's reader group (sized to the
// component's communicator) and wraps it in the self-describing layer.
// Under a supervisor (Env.Handles set) the handle is managed — its
// lifecycle is settled by the supervisor after a failure — and resumes
// at the transport's reported NextStep after a supervised re-attach.
func (e *Env) OpenReader(stream string) (*adios.Reader, error) {
	br, err := e.Transport.AttachReader(stream, e.Comm.Rank(), e.Comm.Size())
	if err != nil {
		if e.Handles != nil {
			e.Handles.noteErr(err)
		}
		return nil, err
	}
	next := 0
	if s, ok := br.(stepper); ok {
		next = s.NextStep()
	}
	if e.Handles != nil {
		br = e.Handles.manageReader(e, br)
	}
	return adios.NewReaderAt(br, next), nil
}

// OpenWriter attaches this rank to a stream's writer group (sized to the
// component's communicator) and wraps it in the self-describing layer.
func (e *Env) OpenWriter(stream string) (*adios.Writer, error) {
	return e.OpenWriterGroup(stream, nil, 0)
}

// OpenWriterGroup is OpenWriter with an optional ADIOS group declaration
// (writes are validated against it) and a default queue depth, normally
// the XML method's QUEUE_SIZE. Precedence for the depth: the Env's
// configured depth (the launch script's -q flag overrides the config at
// job-submission time), then the given default, then the transport
// default.
func (e *Env) OpenWriterGroup(stream string, group *adios.Group, depth int) (*adios.Writer, error) {
	if e.QueueDepth != 0 {
		depth = e.QueueDepth
	}
	bw, err := e.Transport.AttachWriter(stream, e.Comm.Rank(), e.Comm.Size(), depth)
	if err != nil {
		if e.Handles != nil {
			e.Handles.noteErr(err)
		}
		return nil, err
	}
	next := 0
	if s, ok := bw.(stepper); ok {
		next = s.NextStep()
	}
	if e.Handles != nil {
		bw = e.Handles.manageWriter(e, bw)
	}
	return adios.NewWriterAt(bw, group, next), nil
}

// Component is a generic, reusable workflow building block. Run is the
// SPMD body: it executes once per rank, and the ranks coordinate through
// env.Comm and the streams they open. Configuration comes exclusively
// from env.Args so that a compiled component can serve any workflow
// (§IV: "There is no need to re-compile SmartBlock components when using
// them in different workflows").
type Component interface {
	// Name identifies the component kind (e.g. "select").
	Name() string
	// Run executes one rank of the component until its input streams end.
	Run(env *Env) error
}

// UsageError reports malformed component arguments, carrying the usage
// line that the paper presents for each component (Figs. 1–3).
type UsageError struct {
	Component string
	Usage     string
	Problem   string
}

func (e *UsageError) Error() string {
	return fmt.Sprintf("%s: %s (usage: %s %s)", e.Component, e.Problem, e.Component, e.Usage)
}
