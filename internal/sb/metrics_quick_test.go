package sb

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// metricSample is one rank's measurement of one timestep, with a
// Generate that keeps values in ranges where summing thousands of them
// cannot overflow (testing/quick's default full-range int64s would).
type metricSample struct {
	Step     int
	Dur      time.Duration
	BytesIn  int64
	BytesOut int64
}

func (metricSample) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(metricSample{
		Step:     r.Intn(16),
		Dur:      time.Duration(r.Int63n(int64(10 * time.Second))),
		BytesIn:  r.Int63n(1 << 30),
		BytesOut: r.Int63n(1 << 30),
	})
}

func recordAll(samples []metricSample) *Metrics {
	m := NewMetrics("quick", 4)
	for _, s := range samples {
		m.RecordStep(s.Step, s.Dur, s.BytesIn, s.BytesOut)
	}
	return m
}

// TestMetricsOrderInvariance: the aggregated view must not depend on the
// order rank measurements arrive in — neither a reordering within one
// goroutine nor an arbitrary interleaving across concurrent ranks.
func TestMetricsOrderInvariance(t *testing.T) {
	prop := func(samples []metricSample, seed int64) bool {
		want := recordAll(samples).Steps()

		shuffled := append([]metricSample(nil), samples...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		if got := recordAll(shuffled).Steps(); !reflect.DeepEqual(got, want) {
			t.Logf("shuffled order diverged:\n got %+v\nwant %+v", got, want)
			return false
		}

		// Concurrent ranks: round-robin the samples over four goroutines
		// and let the scheduler pick the interleaving.
		m := NewMetrics("quick", 4)
		var wg sync.WaitGroup
		for rank := 0; rank < 4; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for i := rank; i < len(samples); i += 4 {
					s := samples[i]
					m.RecordStep(s.Step, s.Dur, s.BytesIn, s.BytesOut)
				}
			}(rank)
		}
		wg.Wait()
		if got := m.Steps(); !reflect.DeepEqual(got, want) {
			t.Logf("concurrent interleaving diverged:\n got %+v\nwant %+v", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsMeanTotalConsistency: every aggregate the collector reports
// must be re-derivable from the raw samples — per-step mean is the
// truncated sample mean, per-step and whole-run byte totals are exact
// sums, and Steps() enumerates each recorded step once in order.
func TestMetricsMeanTotalConsistency(t *testing.T) {
	prop := func(samples []metricSample) bool {
		type agg struct {
			dur     time.Duration
			n       int
			in, out int64
		}
		byStep := map[int]*agg{}
		var totalIn, totalOut int64
		for _, s := range samples {
			a, ok := byStep[s.Step]
			if !ok {
				a = &agg{}
				byStep[s.Step] = a
			}
			a.dur += s.Dur
			a.n++
			a.in += s.BytesIn
			a.out += s.BytesOut
			totalIn += s.BytesIn
			totalOut += s.BytesOut
		}

		m := recordAll(samples)
		stats := m.Steps()
		if len(stats) != len(byStep) {
			t.Logf("Steps() has %d entries, want %d", len(stats), len(byStep))
			return false
		}
		prev := -1
		for _, st := range stats {
			if st.Step <= prev {
				t.Logf("Steps() out of order at step %d after %d", st.Step, prev)
				return false
			}
			prev = st.Step
			a, ok := byStep[st.Step]
			if !ok {
				t.Logf("Steps() invented step %d", st.Step)
				return false
			}
			wantMean := a.dur / time.Duration(a.n)
			if st.MeanDur != wantMean || st.Samples != a.n || st.BytesIn != a.in || st.BytesOut != a.out {
				t.Logf("step %d: got %+v, want mean=%s samples=%d in=%d out=%d",
					st.Step, st, wantMean, a.n, a.in, a.out)
				return false
			}
			single, ok := m.Step(st.Step)
			if !ok || !reflect.DeepEqual(single, st) {
				t.Logf("Step(%d) = %+v disagrees with Steps() entry %+v", st.Step, single, st)
				return false
			}
		}
		if m.TotalBytesIn() != totalIn || m.TotalBytesOut() != totalOut {
			t.Logf("totals in=%d out=%d, want in=%d out=%d",
				m.TotalBytesIn(), m.TotalBytesOut(), totalIn, totalOut)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
