package sb

import (
	"fmt"

	"repro/internal/ndarray"
)

// PartitionPolicy selects which axis of an incoming global array a
// component splits across its ranks. The paper's components partition
// "the generally large dataset … among its constituent processes"
// (§III-B) without prescribing the axis; the policy is an explicit knob
// here because it is one of the design choices the ablation benchmarks
// measure.
type PartitionPolicy int

const (
	// PartitionFirstFree splits along the first axis the kernel has not
	// reserved (the default, matching row-slab decomposition).
	PartitionFirstFree PartitionPolicy = iota
	// PartitionLongestFree splits along the largest unreserved axis,
	// which balances better when the leading dimension is small.
	PartitionLongestFree
)

// ChooseAxis returns the partition axis for a global shape under the
// policy, skipping reserved axes (e.g. Select cannot partition the axis
// it filters). It errors if every axis is reserved.
func ChooseAxis(policy PartitionPolicy, shape []int, reserved ...int) (int, error) {
	isReserved := func(i int) bool {
		for _, r := range reserved {
			if i == r {
				return true
			}
		}
		return false
	}
	switch policy {
	case PartitionFirstFree:
		for i := range shape {
			if !isReserved(i) {
				return i, nil
			}
		}
	case PartitionLongestFree:
		best, bestSize := -1, -1
		for i, s := range shape {
			if !isReserved(i) && s > bestSize {
				best, bestSize = i, s
			}
		}
		if best >= 0 {
			return best, nil
		}
	default:
		return 0, fmt.Errorf("sb: unknown partition policy %d", policy)
	}
	return 0, fmt.Errorf("sb: no partitionable axis in rank-%d array (reserved %v)", len(shape), reserved)
}

// PartitionBox computes the bounding box rank of nranks owns when a
// global shape is split along axis.
func PartitionBox(shape []int, axis, nranks, rank int) ndarray.Box {
	return ndarray.PartitionAlong(shape, axis, nranks, rank)
}
