package sb

import (
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs the body with the kernel pool at the given width,
// restoring the previous width afterward.
func withWorkers(t *testing.T, n int, body func()) {
	t.Helper()
	prev := KernelWorkers()
	SetKernelWorkers(n)
	defer SetKernelWorkers(prev)
	body()
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withWorkers(t, workers, func() {
			const n = 10_000
			hits := make([]int32, n)
			ParallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
				}
			}
		})
	}
}

func TestParallelForSmallInputStaysSerial(t *testing.T) {
	withWorkers(t, 8, func() {
		calls := 0
		ParallelFor(100, func(lo, hi int) {
			calls++
			if lo != 0 || hi != 100 {
				t.Fatalf("expected single shard [0,100), got [%d,%d)", lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("expected 1 inline call, got %d", calls)
		}
		ParallelFor(0, func(lo, hi int) { t.Fatal("fn called for n=0") })
	})
}

func TestRunShardsHonoursShardCount(t *testing.T) {
	for _, workers := range []int{1, 3} {
		withWorkers(t, workers, func() {
			const n = 50_000
			shards := ShardCount(n)
			if workers == 1 && shards != 1 {
				t.Fatalf("serial pool produced %d shards", shards)
			}
			seen := make([]int32, shards)
			var covered atomic.Int64
			RunShards(n, shards, func(s, lo, hi int) {
				atomic.AddInt32(&seen[s], 1)
				covered.Add(int64(hi - lo))
			})
			for s, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d: shard %d ran %d times", workers, s, c)
				}
			}
			if covered.Load() != n {
				t.Fatalf("workers=%d: covered %d of %d elements", workers, covered.Load(), n)
			}
		})
	}
}

func TestConcurrentKernelsShareThePool(t *testing.T) {
	withWorkers(t, 4, func() {
		const n = 20_000
		var wg sync.WaitGroup
		var total atomic.Int64
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ParallelFor(n, func(lo, hi int) {
					total.Add(int64(hi - lo))
				})
			}()
		}
		wg.Wait()
		if total.Load() != 8*n {
			t.Fatalf("covered %d, want %d", total.Load(), 8*n)
		}
	})
}

func TestSetKernelWorkersDuringKernels(t *testing.T) {
	withWorkers(t, 4, func() {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ParallelFor(8192, func(lo, hi int) {})
			}
		}()
		for i := 0; i < 20; i++ {
			SetKernelWorkers(1 + i%5)
		}
		close(stop)
		wg.Wait()
	})
}
