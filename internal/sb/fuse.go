package sb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/adios"
	"repro/internal/flexpath"
	"repro/internal/mpi"
	"repro/internal/ndarray"
	"repro/internal/obs"
)

// Fusable is implemented by map-style components — those whose Run is a
// single RunMap call — and exposes the kernel seam the stage-fusion
// optimizer composes: the MapConfig naming the component's streams and
// the MapKernel doing the work. A fused stage chains these kernels
// back-to-back on shared ndarray buffers, skipping the broker hop the
// intermediate stream would have cost.
//
// Components whose kernels read beyond their own partition (AllPairs
// re-reads the shared sample through StepInput.Reader) must NOT
// implement Fusable: interior stages of a fused chain have no open
// reader to reach back into.
type Fusable interface {
	Component
	MapSpec() (MapConfig, MapKernel)
}

// FusedPart is one original component inside a fused stage.
type FusedPart struct {
	Cfg    MapConfig
	Kernel MapKernel
}

// Fused runs a chain of map-style kernels as a single stage: one reader
// on the chain's first input stream, one writer on its last output
// stream, and direct in-memory handoffs in between. Each original
// component keeps its externally observable identity — its own
// stage.step and kernel.transform spans and its own comp.<name>.*
// metrics — so a trace of a fused workflow still shows every component
// the launch script named.
type Fused struct {
	parts []FusedPart
	name  string

	metricsOnce sync.Once
	metrics     []*Metrics
}

// NewFused composes components into a fused stage. Every component must
// implement Fusable, and each one's output stream and array must be the
// next one's input — the 1:1 edge contract the planner checks before
// electing a chain for fusion.
func NewFused(comps ...Component) (*Fused, error) {
	if len(comps) < 2 {
		return nil, fmt.Errorf("sb: fusing needs at least 2 components, got %d", len(comps))
	}
	parts := make([]FusedPart, len(comps))
	names := make([]string, len(comps))
	for i, c := range comps {
		fc, ok := c.(Fusable)
		if !ok {
			return nil, fmt.Errorf("sb: component %q is not fusable", c.Name())
		}
		cfg, kernel := fc.MapSpec()
		parts[i] = FusedPart{Cfg: cfg, Kernel: kernel}
		names[i] = cfg.Name
		if i > 0 {
			prev := parts[i-1].Cfg
			if prev.OutStream != cfg.InStream {
				return nil, fmt.Errorf("sb: cannot fuse %q into %q: output stream %q != input stream %q",
					prev.Name, cfg.Name, prev.OutStream, cfg.InStream)
			}
			if prev.OutArray != cfg.InArray {
				return nil, fmt.Errorf("sb: cannot fuse %q into %q: output array %q != input array %q",
					prev.Name, cfg.Name, prev.OutArray, cfg.InArray)
			}
		}
	}
	return &Fused{parts: parts, name: strings.Join(names, "+")}, nil
}

// Name implements Component: the fused stage is named after its chain,
// e.g. "select+magnitude".
func (f *Fused) Name() string { return f.name }

// Parts returns the names of the fused components, in chain order.
func (f *Fused) Parts() []string {
	out := make([]string, len(f.parts))
	for i, p := range f.parts {
		out[i] = p.Cfg.Name
	}
	return out
}

// InteriorStreams returns the streams the fusion elided — the chain's
// internal edges that no longer touch the fabric.
func (f *Fused) InteriorStreams() []string {
	out := make([]string, 0, len(f.parts)-1)
	for _, p := range f.parts[1:] {
		out = append(out, p.Cfg.InStream)
	}
	return out
}

// Ports implements PortDeclarer: externally the fused stage subscribes
// to the chain's first input and publishes its last output — the
// interior streams do not exist.
func (f *Fused) Ports() []Port {
	first, last := f.parts[0].Cfg, f.parts[len(f.parts)-1].Cfg
	return []Port{
		{Dir: PortIn, Stream: first.InStream, Array: first.InArray},
		{Dir: PortOut, Stream: last.OutStream, Array: last.OutArray},
	}
}

// ensureMetrics creates the per-component collectors once; reg may be
// nil (no registry mirroring).
func (f *Fused) ensureMetrics(ranks int, reg *obs.Registry) {
	f.metricsOnce.Do(func() {
		f.metrics = make([]*Metrics, len(f.parts))
		for i, p := range f.parts {
			f.metrics[i] = NewMetrics(p.Cfg.Name, ranks)
			f.metrics[i].BindRegistry(reg)
		}
	})
}

// BindMetrics creates one metrics collector per fused component, bound
// to the registry, and returns them in chain order. The workflow runner
// calls this instead of creating a single stage-level collector, so a
// fused run still reports comp.<name>.* for every original component.
func (f *Fused) BindMetrics(ranks int, reg *obs.Registry) []*Metrics {
	f.ensureMetrics(ranks, reg)
	return f.metrics
}

// StageMetrics returns the per-component collectors (nil before the
// first Run or BindMetrics).
func (f *Fused) StageMetrics() []*Metrics { return f.metrics }

// Run implements Component: the fused per-rank loop. One reader, one
// writer, and for every timestep the kernels run back-to-back — each
// handing its output block to the next either in place (when the next
// kernel's partition is exactly this rank's block, the common case) or
// through a flexpath.Direct exchange (when the downstream kernel
// partitions along a different axis), never through the broker.
func (f *Fused) Run(env *Env) error {
	f.ensureMetrics(env.Comm.Size(), env.Registry)
	for _, m := range f.metrics {
		m.MarkStarted()
		defer m.MarkFinished()
	}
	first, last := f.parts[0].Cfg, f.parts[len(f.parts)-1].Cfg
	r, err := env.OpenReader(first.InStream)
	if err != nil {
		return fmt.Errorf("%s: attaching reader to %q: %w", f.name, first.InStream, err)
	}
	defer r.Close()
	w, err := env.OpenWriter(last.OutStream)
	if err != nil {
		return fmt.Errorf("%s: attaching writer to %q: %w", f.name, last.OutStream, err)
	}
	defer w.Close()

	// One Direct exchange per interior edge, shared by all ranks of this
	// attempt: rank 0 creates them and broadcasts the pointers, so a
	// supervised restart (a fresh Run on every rank) starts from clean
	// exchanges instead of a half-published step.
	var exchanges []*flexpath.Direct
	if env.Comm.Size() > 1 {
		if env.Comm.Rank() == 0 {
			exchanges = make([]*flexpath.Direct, len(f.parts)-1)
			for i := range exchanges {
				exchanges[i] = flexpath.NewDirect(env.Comm.Size())
			}
		}
		exchanges, err = mpi.Bcast(env.Comm, exchanges, 0)
		if err != nil {
			return fmt.Errorf("%s: sharing fused exchanges: %w", f.name, err)
		}
	}

	for {
		// Step boundary: same elastic-rescale interrupt seam as RunMap.
		if env.Interrupt != nil {
			if err := env.Interrupt(); err != nil {
				env.Handles.Suspend()
				return err
			}
		}
		step := r.NextStep() // absolute: a re-attached reader resumes mid-stream
		eof, err := f.runFusedStep(env, r, w, exchanges, step)
		if eof {
			env.logf("%s rank %d: input stream %q ended after %d steps", f.name, env.Comm.Rank(), first.InStream, step)
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// runFusedStep executes one timestep through the whole chain. The input
// step stays open until the final output is published, so a crash
// anywhere mid-chain leaves the step unreleased and a supervised
// restart recomputes it from the stream — the same crash-consistency
// window RunMap has.
func (f *Fused) runFusedStep(env *Env, r *adios.Reader, w *adios.Writer,
	exchanges []*flexpath.Direct, step int) (eof bool, err error) {
	rank := env.Comm.Rank()
	tr := env.Tracer

	var info *adios.StepInfo // the current (real or virtual) step metadata
	var out *StepOutput      // the previous kernel's output
	for k := range f.parts {
		part := &f.parts[k]
		cfg := part.Cfg
		// Per-component stage.step span, allocated up front and carried
		// into every transport call of this part, emitted once the part
		// settles — exactly the contract RunMap gives an unfused stage.
		ctx := env.Ctx()
		var stepSpan obs.SpanID
		var stepStart int64
		if tr.Enabled() {
			stepSpan = tr.NextID()
			ctx = obs.WithParent(ctx, stepSpan)
			stepStart = tr.Now()
		}
		begin := time.Now()

		var in *StepInput
		if k == 0 {
			stepInfo, berr := r.BeginStep(ctx)
			if errors.Is(berr, io.EOF) {
				return true, nil
			}
			if berr != nil {
				err = fmt.Errorf("%s: step %d: %w", cfg.Name, step, berr)
			} else {
				info = stepInfo
				begin = time.Now() // active time: excludes waiting for the producer
				in, err = f.readInput(env, cfg, part.Kernel, r, ctx, info, step)
			}
		} else {
			info = handoffInfo(&f.parts[k-1].Cfg, info, out, step)
			in, err = f.handoff(env, cfg, part.Kernel, exchanges, ctx, info, out, step, k)
		}
		var bytesIn, bytesOut int64
		if err == nil {
			bytesIn = int64(in.Block.Size() * 8)
			out, err = transformKernel(env, cfg.Name, cfg.InStream, part.Kernel, stepSpan, step, in)
			if err != nil {
				err = fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
			}
		}
		if err == nil {
			bytesOut = int64(len(out.Data) * 8)
			if k == len(f.parts)-1 {
				if perr := publishOutput(env, cfg, w, ctx, step, info.Attrs, out); perr != nil {
					err = fmt.Errorf("%s: step %d: %w", cfg.Name, step, perr)
				}
			}
		}
		if tr.Enabled() {
			span := obs.Span{ID: stepSpan, Kind: obs.KindStageStep,
				Stream: cfg.InStream, Step: step, Rank: rank, Peer: -1,
				Bytes: bytesIn, Epoch: env.Epoch, Note: cfg.Name, Start: stepStart}
			if err != nil {
				span.Err = err.Error()
			}
			tr.Emit(span)
		}
		if err != nil {
			return false, err
		}
		f.metrics[k].RecordStep(step, time.Since(begin), bytesIn, bytesOut)
	}
	if rerr := r.EndStep(); rerr != nil {
		return false, fmt.Errorf("%s: step %d: %w", f.name, step, rerr)
	}
	return false, nil
}

// readInput reads this rank's partition of the chain's first input from
// the real stream — identical to the head of an unfused map step.
func (f *Fused) readInput(env *Env, cfg MapConfig, kernel MapKernel, r *adios.Reader,
	ctx context.Context, info *adios.StepInfo, step int) (*StepInput, error) {
	rank, size := env.Comm.Rank(), env.Comm.Size()
	v, ok := info.Var(cfg.InArray)
	if !ok {
		return nil, fmt.Errorf("%s: step %d of stream %q has no array %q", cfg.Name, step, cfg.InStream, cfg.InArray)
	}
	box, err := partitionFor(kernel, cfg.Policy, v, info, size, rank)
	if err != nil {
		return nil, fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
	}
	block, err := r.ReadBox(ctx, cfg.InArray, box)
	if err != nil {
		return nil, fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
	}
	return &StepInput{Info: info, Var: v, Box: box, Block: block, Env: env, Reader: r}, nil
}

// handoff turns the previous kernel's output into the next kernel's
// input. The next kernel partitions the (virtual) global array exactly
// as it would have partitioned the stream: when its box is this rank's
// own output block the data is used in place; otherwise the ranks
// exchange blocks through the edge's Direct and each assembles its box.
// Every rank takes the same path per step — publish/await/release is
// collective — so a partition disagreement can never deadlock the
// exchange.
func (f *Fused) handoff(env *Env, cfg MapConfig, kernel MapKernel, exchanges []*flexpath.Direct,
	ctx context.Context, info *adios.StepInfo, prev *StepOutput, step, k int) (*StepInput, error) {
	rank, size := env.Comm.Rank(), env.Comm.Size()
	v := info.Vars[0]
	box, err := partitionFor(kernel, cfg.Policy, v, info, size, rank)
	if err != nil {
		return nil, fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
	}
	var block *ndarray.Array
	if size == 1 {
		if !box.Equal(prev.Box) {
			return nil, fmt.Errorf("%s: step %d: fused handoff box %v does not cover output %v",
				cfg.Name, step, box, prev.Box)
		}
		block, err = blockView(prev, box)
	} else {
		ex := exchanges[k-1]
		if perr := ex.Publish(ctx, step, rank, flexpath.DirectBlock{
			Dims: prev.GlobalDims, Box: prev.Box, Data: prev.Data,
		}); perr != nil {
			return nil, fmt.Errorf("%s: step %d: fused exchange: %w", cfg.Name, step, perr)
		}
		blocks, aerr := ex.Await(ctx, step)
		if aerr != nil {
			return nil, fmt.Errorf("%s: step %d: fused exchange: %w", cfg.Name, step, aerr)
		}
		block, err = flexpath.AssembleBox(blocks, box)
		if rerr := ex.Release(step); rerr != nil && err == nil {
			err = rerr
		}
	}
	if err != nil {
		return nil, fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
	}
	return &StepInput{Info: info, Var: v, Box: box, Block: block, Env: env}, nil
}

// blockView wraps a kernel output as the ndarray block the next kernel
// reads — sharing the data, labeling the axes with the global names.
func blockView(out *StepOutput, box ndarray.Box) (*ndarray.Array, error) {
	dims := make([]ndarray.Dim, len(out.GlobalDims))
	for i := range out.GlobalDims {
		dims[i] = ndarray.Dim{Name: out.GlobalDims[i].Name, Size: box.Counts[i]}
	}
	return ndarray.FromData(out.Data, dims...)
}

// handoffInfo builds the virtual step metadata the next kernel sees:
// the previous kernel's output variable plus exactly the attributes the
// previous stage would have published downstream (forwarded upstream
// attributes when its config asks for it, then its own overrides).
func handoffInfo(prevCfg *MapConfig, prevInfo *adios.StepInfo, out *StepOutput, step int) *adios.StepInfo {
	attrs := make(map[string]string, len(out.Attrs))
	if prevCfg.ForwardAttrs {
		for k, v := range prevInfo.Attrs {
			attrs[k] = v
		}
	}
	for k, v := range out.Attrs {
		attrs[k] = v
	}
	return &adios.StepInfo{
		Step:  step,
		Vars:  []*adios.GlobalVar{{Name: prevCfg.OutArray, Dims: out.GlobalDims}},
		Attrs: attrs,
	}
}
