package sb

import (
	"strings"
	"testing"

	"repro/internal/adios"
)

// fuseFake is a minimal Fusable map component for constructor tests.
type fuseFake struct{ cfg MapConfig }

func (f *fuseFake) Name() string { return f.cfg.Name }
func (f *fuseFake) Run(env *Env) error {
	cfg, k := f.MapSpec()
	return RunMap(env, cfg, k)
}
func (f *fuseFake) MapSpec() (MapConfig, MapKernel) { return f.cfg, f }
func (f *fuseFake) ReservedAxes(v *adios.GlobalVar, info *adios.StepInfo) ([]int, error) {
	return nil, nil
}
func (f *fuseFake) Transform(in *StepInput) (*StepOutput, error) {
	return &StepOutput{GlobalDims: in.Var.Dims, Box: in.Box, Data: in.Block.Data()}, nil
}

// opaqueComp implements Component but not Fusable.
type opaqueComp struct{}

func (opaqueComp) Name() string       { return "opaque" }
func (opaqueComp) Run(env *Env) error { return nil }

func fakeMap(name, inStream, inArray, outStream, outArray string) *fuseFake {
	return &fuseFake{cfg: MapConfig{
		Name: name, InStream: inStream, InArray: inArray,
		OutStream: outStream, OutArray: outArray,
	}}
}

func TestNewFusedValidation(t *testing.T) {
	a := fakeMap("a", "in.fp", "x", "mid.fp", "y")
	b := fakeMap("b", "mid.fp", "y", "out.fp", "z")
	cases := map[string][]Component{
		"too few":         {a},
		"none":            {},
		"not fusable":     {a, opaqueComp{}},
		"stream mismatch": {a, fakeMap("b", "other.fp", "y", "out.fp", "z")},
		"array mismatch":  {a, fakeMap("b", "mid.fp", "other", "out.fp", "z")},
		"order reversed":  {b, a},
	}
	for name, comps := range cases {
		if _, err := NewFused(comps...); err == nil {
			t.Errorf("NewFused(%s) succeeded", name)
		}
	}
	if _, err := NewFused(a, b); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestFusedIntrospection(t *testing.T) {
	f, err := NewFused(
		fakeMap("a", "in.fp", "x", "mid.fp", "y"),
		fakeMap("b", "mid.fp", "y", "mid2.fp", "z"),
		fakeMap("c", "mid2.fp", "z", "out.fp", "w"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "a+b+c" {
		t.Fatalf("Name = %q", f.Name())
	}
	if got := strings.Join(f.Parts(), ","); got != "a,b,c" {
		t.Fatalf("Parts = %q", got)
	}
	if got := strings.Join(f.InteriorStreams(), ","); got != "mid.fp,mid2.fp" {
		t.Fatalf("InteriorStreams = %q", got)
	}
	ports := f.Ports()
	if len(ports) != 2 {
		t.Fatalf("Ports = %+v", ports)
	}
	in, out := ports[0], ports[1]
	if in.Dir != PortIn || in.Stream != "in.fp" || in.Array != "x" {
		t.Fatalf("in port = %+v", in)
	}
	if out.Dir != PortOut || out.Stream != "out.fp" || out.Array != "w" {
		t.Fatalf("out port = %+v", out)
	}
}

// TestFusedBindMetrics: each part keeps its own Metrics identity so
// comp.<name>.* gauges and report rows survive fusion.
func TestFusedBindMetrics(t *testing.T) {
	f, err := NewFused(
		fakeMap("a", "in.fp", "x", "mid.fp", "y"),
		fakeMap("b", "mid.fp", "y", "out.fp", "z"),
	)
	if err != nil {
		t.Fatal(err)
	}
	ms := f.BindMetrics(3, nil)
	if len(ms) != 2 {
		t.Fatalf("BindMetrics returned %d metrics", len(ms))
	}
	if ms[0].Component() != "a" || ms[1].Component() != "b" {
		t.Fatalf("metrics components = %q, %q", ms[0].Component(), ms[1].Component())
	}
	// Binding again must return the same instances (one identity per part).
	again := f.BindMetrics(3, nil)
	if again[0] != ms[0] || again[1] != ms[1] {
		t.Fatal("BindMetrics is not idempotent")
	}
	if sm := f.StageMetrics(); len(sm) != 2 || sm[0] != ms[0] {
		t.Fatal("StageMetrics disagrees with BindMetrics")
	}
}
