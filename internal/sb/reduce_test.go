package sb

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/adios"
	"repro/internal/flexpath"
	"repro/internal/mpi"
	"repro/internal/ndarray"
)

// summer is a toy ReduceKernel: the global sum of the array.
type summer struct{}

func (summer) ReservedAxes(v *adios.GlobalVar, info *adios.StepInfo) ([]int, error) {
	return nil, nil
}

func (summer) Reduce(in *StepInput) (float64, error) {
	local := 0.0
	for _, v := range in.Block.Data() {
		local += v
	}
	return mpi.Allreduce(in.Env.Comm, local, mpi.Sum[float64])
}

func TestRunReduceEndToEnd(t *testing.T) {
	broker := flexpath.NewBroker()
	transport := BrokerTransport{Broker: broker}
	const steps, n = 3, 30

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mpi.Run(2, func(comm *mpi.Comm) error {
			env := &Env{Comm: comm, Transport: transport}
			w, err := env.OpenWriter("sum.fp")
			if err != nil {
				return err
			}
			defer w.Close()
			for s := 0; s < steps; s++ {
				arr := ndarray.New(ndarray.Dim{Name: "n", Size: n})
				for i := range arr.Data() {
					arr.Data()[i] = float64(s + 1)
				}
				box := ndarray.PartitionAlong(arr.Shape(), 0, comm.Size(), comm.Rank())
				block, err := arr.CopyBox(box)
				if err != nil {
					return err
				}
				w.BeginStep()
				if err := w.Write("x", arr.Dims(), box, block.Data()); err != nil {
					return err
				}
				if err := w.EndStep(env.Ctx()); err != nil {
					return err
				}
			}
			return nil
		})
	}()

	var mu sync.Mutex
	var got []float64
	metrics := NewMetrics("summer", 3)
	err := mpi.Run(3, func(comm *mpi.Comm) error {
		env := &Env{Comm: comm, Transport: transport, Metrics: metrics}
		return RunReduce(env, ReduceConfig[float64]{
			Name:     "summer",
			InStream: "sum.fp", InArray: "x",
			RequireDims: 1,
			OutBytes:    8,
			OnResult: func(step int, result float64) error {
				mu.Lock()
				got = append(got, result)
				mu.Unlock()
				return nil
			},
		}, summer{})
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != steps {
		t.Fatalf("OnResult fired %d times, want %d", len(got), steps)
	}
	for s, sum := range got {
		if want := float64(n * (s + 1)); sum != want {
			t.Fatalf("step %d sum = %v, want %v", s, sum, want)
		}
	}
	if len(metrics.Steps()) != steps {
		t.Fatalf("metrics recorded %d steps", len(metrics.Steps()))
	}
	st, _ := metrics.Step(0)
	if st.Samples != 3 || st.BytesOut != 3*8 {
		t.Fatalf("step stats = %+v", st)
	}
}

func TestRunReduceRequireDims(t *testing.T) {
	broker := flexpath.NewBroker()
	transport := BrokerTransport{Broker: broker}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mpi.Run(1, func(comm *mpi.Comm) error {
			env := &Env{Comm: comm, Transport: transport}
			w, _ := env.OpenWriter("rd.fp")
			defer w.Close()
			w.BeginStep()
			w.WriteArray("x", ndarray.New(ndarray.Dim{Name: "a", Size: 2}, ndarray.Dim{Name: "b", Size: 2}))
			return w.EndStep(env.Ctx())
		})
	}()
	err := mpi.Run(1, func(comm *mpi.Comm) error {
		env := &Env{Comm: comm, Transport: transport}
		return RunReduce(env, ReduceConfig[float64]{
			Name: "summer", InStream: "rd.fp", InArray: "x", RequireDims: 1,
		}, summer{})
	})
	if err == nil || !strings.Contains(err.Error(), "1-dimensional") {
		t.Fatalf("err = %v", err)
	}
	wg.Wait()
}

func TestRunReduceOnResultError(t *testing.T) {
	broker := flexpath.NewBroker()
	transport := BrokerTransport{Broker: broker}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mpi.Run(1, func(comm *mpi.Comm) error {
			env := &Env{Comm: comm, Transport: transport}
			w, _ := env.OpenWriter("oe.fp")
			defer w.Close()
			w.BeginStep()
			w.WriteArray("x", ndarray.New(ndarray.Dim{Name: "n", Size: 4}))
			return w.EndStep(env.Ctx())
		})
	}()
	sentinel := errors.New("sink is full")
	err := mpi.Run(1, func(comm *mpi.Comm) error {
		env := &Env{Comm: comm, Transport: transport}
		return RunReduce(env, ReduceConfig[float64]{
			Name: "summer", InStream: "oe.fp", InArray: "x",
			OnResult: func(step int, result float64) error { return sentinel },
		}, summer{})
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	wg.Wait()
}
