package sb

import (
	"context"
	"errors"
	"io"
	"sync"

	"repro/internal/adios"
	"repro/internal/pool"
)

// This file is the glue between component code and the workflow
// supervisor: every transport handle a supervised component opens is
// recorded in a HandleSet, and how those handles are settled at the end
// of a run attempt — closed, detached, or crashed — is decided by the
// supervisor, not by the component's own defer chain.
//
// The problem it solves: a component that fails mid-step runs its
// `defer w.Close()` / `defer r.Close()` on the way out. A graceful close
// is exactly wrong there — closing a reader rank stops it gating step
// retirement (buffered steps the restarted component still needs would
// retire), and closing a writer rank can end the stream, turning a
// transient failure into a permanent EOF downstream. So a HandleSet is
// "poisoned" by the first operation error: from then on the component's
// own Close calls become deferred no-ops and the supervisor settles
// every surviving handle with Finish — Detach before a retry, Crash when
// retries are exhausted, Close on success. On a clean run the component's
// closes pass straight through, preserving mid-run close semantics (a
// sequential-phase component really does mean Close when it closes one
// stream and opens the next).

// FinishMode selects how HandleSet.Finish settles surviving handles.
type FinishMode int

const (
	// FinishClose retires handles gracefully (successful completion).
	FinishClose FinishMode = iota
	// FinishDetach suspends handles for a supervised restart: group slots
	// free up, buffered steps stay buffered, and the next attempt's
	// handles resume at the transport's NextStep.
	FinishDetach
	// FinishCrash declares the component lost: writer handles fail their
	// streams (readers downstream get ErrWriterLost), reader handles
	// close so they stop gating retirement.
	FinishCrash
)

// Capability probes on transport handles. The flexpath handles (local
// and TCP) implement all three; a transport that implements none still
// works, falling back to Close.
type detacher interface{ Detach() error }
type crasher interface{ Crash(cause error) error }
type stepper interface{ NextStep() int }

// HandleSet tracks every managed transport handle opened by one
// component run attempt, across all of its ranks. It is safe for
// concurrent use by the rank goroutines.
type HandleSet struct {
	mu       sync.Mutex
	poisoned bool
	entries  []*managedEntry
}

// NewHandleSet returns an empty set. Assign it to Env.Handles (every
// rank's Env of one run attempt shares one set) to route that attempt's
// handle lifecycle through the supervisor.
func NewHandleSet() *HandleSet { return &HandleSet{} }

type managedEntry struct {
	env     *Env
	writer  adios.BlockWriter // exactly one of writer/reader is non-nil
	reader  adios.BlockReader
	settled bool
}

func (hs *HandleSet) poison() {
	hs.mu.Lock()
	hs.poisoned = true
	hs.mu.Unlock()
}

// Suspend defers all further component-side Close calls to the
// supervisor's Finish, exactly as an operation failure would. The
// rescale interrupt uses it: ErrRescale is a control signal, not an op
// error, so nothing poisons the set organically — but the component's
// defer chain must still not close handles the supervisor is about to
// detach (a graceful writer close would end the stream for good).
// Nil-safe.
func (hs *HandleSet) Suspend() {
	if hs == nil {
		return
	}
	hs.poison()
}

// Poisoned reports whether any managed operation has failed.
func (hs *HandleSet) Poisoned() bool {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return hs.poisoned
}

// noteErr records an operation failure. io.EOF is the normal end of a
// stream, not a failure.
func (hs *HandleSet) noteErr(err error) {
	if err == nil || errors.Is(err, io.EOF) {
		return
	}
	hs.poison()
}

// settleInline is the component-side Close path: on a clean set the
// handle closes through immediately; on a poisoned set settlement is
// deferred to the supervisor's Finish and the close is a no-op.
func (hs *HandleSet) settleInline(e *managedEntry, close func() error) error {
	hs.mu.Lock()
	if e.settled || hs.poisoned {
		hs.mu.Unlock()
		return nil
	}
	e.settled = true
	hs.mu.Unlock()
	return close()
}

// FinishRank settles one rank's outcome the moment its Run body returns:
// a failed rank poisons the set (its handles — and its peers' — wait for
// the supervisor), a succeeded rank's handles close immediately so its
// streams retire without waiting for slower peers.
func (hs *HandleSet) FinishRank(env *Env, err error) {
	if err != nil {
		hs.noteErr(err)
		return
	}
	hs.mu.Lock()
	var todo []*managedEntry
	for _, e := range hs.entries {
		if e.env == env && !e.settled {
			e.settled = true
			todo = append(todo, e)
		}
	}
	hs.mu.Unlock()
	for _, e := range todo {
		if e.writer != nil {
			e.writer.Close()
		} else {
			e.reader.Close()
		}
	}
}

// Finish settles every surviving handle of the attempt and resets the
// set for the next one. cause is reported to the transport on
// FinishCrash (it becomes part of downstream ErrWriterLost diagnoses).
func (hs *HandleSet) Finish(mode FinishMode, cause error) {
	hs.mu.Lock()
	var todo []*managedEntry
	for _, e := range hs.entries {
		if !e.settled {
			e.settled = true
			todo = append(todo, e)
		}
	}
	hs.entries = nil
	hs.poisoned = false
	hs.mu.Unlock()
	for _, e := range todo {
		var h any = e.reader
		if e.writer != nil {
			h = e.writer
		}
		switch mode {
		case FinishDetach:
			if d, ok := h.(detacher); ok {
				d.Detach()
				continue
			}
		case FinishCrash:
			if e.writer != nil {
				if c, ok := h.(crasher); ok {
					c.Crash(cause)
					continue
				}
			}
		}
		if e.writer != nil {
			e.writer.Close()
		} else {
			e.reader.Close()
		}
	}
}

// manageWriter wraps a transport writer handle with poison-on-error,
// per-op step deadlines, and supervised settlement.
func (hs *HandleSet) manageWriter(env *Env, bw adios.BlockWriter) adios.BlockWriter {
	e := &managedEntry{env: env, writer: bw}
	hs.mu.Lock()
	hs.entries = append(hs.entries, e)
	hs.mu.Unlock()
	return &managedWriter{hs: hs, e: e, inner: bw, env: env}
}

// manageReader is manageWriter for reader handles.
func (hs *HandleSet) manageReader(env *Env, br adios.BlockReader) adios.BlockReader {
	e := &managedEntry{env: env, reader: br}
	hs.mu.Lock()
	hs.entries = append(hs.entries, e)
	hs.mu.Unlock()
	return &managedReader{hs: hs, e: e, inner: br, env: env}
}

// opCtx bounds one blocking transport operation with the Env's step
// deadline, turning an unbounded wait (a stalled upstream, a wedged
// queue) into context.DeadlineExceeded — which the supervisor treats as
// retryable.
func opCtx(env *Env, ctx context.Context) (context.Context, context.CancelFunc) {
	if env.StepTimeout <= 0 {
		return ctx, func() {}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithTimeout(ctx, env.StepTimeout)
}

type managedWriter struct {
	hs    *HandleSet
	e     *managedEntry
	inner adios.BlockWriter
	env   *Env
}

func (m *managedWriter) PublishBlock(ctx context.Context, step int, meta, payload []byte) error {
	ctx, cancel := opCtx(m.env, ctx)
	defer cancel()
	err := m.inner.PublishBlock(ctx, step, meta, payload)
	m.hs.noteErr(err)
	return err
}

// PublishBlockRef forwards the zero-copy capability when the wrapped
// transport has it, so supervision does not forfeit pooling. On a
// transport without it the bytes are handed over via PublishBlock and
// the references dropped WITHOUT recycling: the transport may retain the
// slices past the call, so returning their storage to the pool would
// hand it to a future step while still referenced. The GC reclaims them
// instead — correct, just unpooled.
func (m *managedWriter) PublishBlockRef(ctx context.Context, step int, meta, payload *pool.Buf) error {
	ctx, cancel := opCtx(m.env, ctx)
	defer cancel()
	var err error
	if rw, ok := m.inner.(adios.RefBlockWriter); ok {
		err = rw.PublishBlockRef(ctx, step, meta, payload)
	} else {
		err = m.inner.PublishBlock(ctx, step, meta.Bytes(), payload.Bytes())
	}
	m.hs.noteErr(err)
	return err
}

func (m *managedWriter) Close() error {
	return m.hs.settleInline(m.e, m.inner.Close)
}

type managedReader struct {
	hs    *HandleSet
	e     *managedEntry
	inner adios.BlockReader
	env   *Env
}

func (m *managedReader) StepMeta(ctx context.Context, step int) ([][]byte, error) {
	ctx, cancel := opCtx(m.env, ctx)
	defer cancel()
	metas, err := m.inner.StepMeta(ctx, step)
	m.hs.noteErr(err)
	return metas, err
}

func (m *managedReader) FetchBlock(ctx context.Context, step, writerRank int) ([]byte, error) {
	ctx, cancel := opCtx(m.env, ctx)
	defer cancel()
	payload, err := m.inner.FetchBlock(ctx, step, writerRank)
	m.hs.noteErr(err)
	return payload, err
}

func (m *managedReader) ReleaseStep(step int) error {
	err := m.inner.ReleaseStep(step)
	m.hs.noteErr(err)
	return err
}

func (m *managedReader) Close() error {
	return m.hs.settleInline(m.e, m.inner.Close)
}
