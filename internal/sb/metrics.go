package sb

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Metrics collects per-timestep measurements from every rank of one
// component. It is safe for concurrent use by all rank goroutines. The
// evaluation section of the paper reports exactly these quantities:
// per-component timestep completion times "averaged over the component's
// communicator" (§V-B) and per-process throughputs derived from them.
type Metrics struct {
	mu        sync.Mutex
	component string
	steps     map[int]*stepAgg
	started   time.Time
	finished  time.Time
	ranks     int

	// Registry mirrors (see BindRegistry); nil instruments are no-ops,
	// so an unbound collector pays nothing extra per RecordStep.
	regSteps    *obs.Counter
	regBytesIn  *obs.Counter
	regBytesOut *obs.Counter
	regStepNs   *obs.Histogram
}

type stepAgg struct {
	totalDur time.Duration
	samples  int
	bytesIn  int64
	bytesOut int64
}

// NewMetrics creates a collector for a component with the given name and
// rank count.
func NewMetrics(component string, ranks int) *Metrics {
	return &Metrics{component: component, steps: map[int]*stepAgg{}, ranks: ranks}
}

// Component returns the component name the collector belongs to.
func (m *Metrics) Component() string { return m.component }

// Ranks returns the size of the component's communicator.
func (m *Metrics) Ranks() int { return m.ranks }

// SetRanks records a new communicator size after an elastic rescale, so
// per-rank normalization in reports reflects the size the remaining
// steps actually ran at.
func (m *Metrics) SetRanks(n int) {
	m.mu.Lock()
	m.ranks = n
	m.mu.Unlock()
}

// BindRegistry makes the collector mirror every RecordStep into registry
// instruments under the "comp.<name>." prefix: step_samples, bytes_in,
// bytes_out, and a step_ns latency histogram. The per-step aggregation
// that the paper's tables report is unchanged; the registry view is what
// the -metrics-addr endpoint and workflow reports consume. Nil-safe.
func (m *Metrics) BindRegistry(r *obs.Registry) {
	if m == nil || r == nil {
		return
	}
	p := "comp." + m.component + "."
	m.mu.Lock()
	m.regSteps = r.Counter(p + "step_samples")
	m.regBytesIn = r.Counter(p + "bytes_in")
	m.regBytesOut = r.Counter(p + "bytes_out")
	m.regStepNs = r.Histogram(p + "step_ns")
	m.mu.Unlock()
}

// MarkStarted records the wall-clock start of the component (first rank
// to arrive wins).
func (m *Metrics) MarkStarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started.IsZero() {
		m.started = time.Now()
	}
}

// MarkFinished records the wall-clock end (last rank to finish wins).
func (m *Metrics) MarkFinished() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished = time.Now()
}

// RecordStep adds one rank's measurement of one timestep: how long the
// rank spent on it and how many payload bytes it read and wrote.
func (m *Metrics) RecordStep(step int, d time.Duration, bytesIn, bytesOut int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg, ok := m.steps[step]
	if !ok {
		agg = &stepAgg{}
		m.steps[step] = agg
	}
	agg.totalDur += d
	agg.samples++
	agg.bytesIn += bytesIn
	agg.bytesOut += bytesOut
	m.regSteps.Inc()
	m.regBytesIn.Add(bytesIn)
	m.regBytesOut.Add(bytesOut)
	m.regStepNs.Observe(int64(d))
}

// StepStats is the aggregated view of one timestep across the communicator.
type StepStats struct {
	Step     int
	MeanDur  time.Duration // mean per-rank duration
	BytesIn  int64         // total input bytes across ranks
	BytesOut int64         // total output bytes across ranks
	Samples  int           // rank measurements received
}

// PerProcThroughput returns this step's per-process input throughput in
// bytes/second — the Fig. 9 metric.
func (s StepStats) PerProcThroughput() float64 {
	if s.MeanDur <= 0 || s.Samples == 0 {
		return 0
	}
	perProcBytes := float64(s.BytesIn) / float64(s.Samples)
	return perProcBytes / s.MeanDur.Seconds()
}

// Step returns aggregated stats for one timestep.
func (m *Metrics) Step(step int) (StepStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg, ok := m.steps[step]
	if !ok {
		return StepStats{}, false
	}
	return m.statsLocked(step, agg), true
}

func (m *Metrics) statsLocked(step int, agg *stepAgg) StepStats {
	mean := time.Duration(0)
	if agg.samples > 0 {
		mean = agg.totalDur / time.Duration(agg.samples)
	}
	return StepStats{
		Step:     step,
		MeanDur:  mean,
		BytesIn:  agg.bytesIn,
		BytesOut: agg.bytesOut,
		Samples:  agg.samples,
	}
}

// Steps returns aggregated stats for every recorded timestep, ordered by
// step number.
func (m *Metrics) Steps() []StepStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	nums := make([]int, 0, len(m.steps))
	for s := range m.steps {
		nums = append(nums, s)
	}
	sort.Ints(nums)
	out := make([]StepStats, 0, len(nums))
	for _, s := range nums {
		out = append(out, m.statsLocked(s, m.steps[s]))
	}
	return out
}

// Elapsed returns the wall-clock lifetime of the component: first rank
// start to last rank finish. Zero until both marks exist.
func (m *Metrics) Elapsed() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started.IsZero() || m.finished.IsZero() {
		return 0
	}
	return m.finished.Sub(m.started)
}

// TotalBytesIn sums input bytes over all steps and ranks.
func (m *Metrics) TotalBytesIn() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, agg := range m.steps {
		n += agg.bytesIn
	}
	return n
}

// TotalBytesOut sums output bytes over all steps and ranks.
func (m *Metrics) TotalBytesOut() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, agg := range m.steps {
		n += agg.bytesOut
	}
	return n
}
