package sb

import (
	"os"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// Kernel parallelism. Component Transform inner loops (magnitude,
// dimension reduction, histogram binning) are embarrassingly parallel
// over array elements, so they shard across a bounded pool of worker
// goroutines shared by the whole process. The pool is sized by
// GOMAXPROCS (override with SB_KERNEL_WORKERS or SetKernelWorkers); on
// a single-core host everything degrades to the plain serial loop with
// no goroutines and no allocation.
//
// Shards are contiguous index ranges, so results are bit-identical to
// the serial loop for element-wise kernels, and reductions (histogram)
// merge per-shard partials in shard order to stay deterministic.

// minShardWork is the smallest number of elements worth handing to a
// worker goroutine; below roughly two shards of this, sharding overhead
// outweighs the loop.
const minShardWork = 2048

type parTask struct {
	lo, hi int
	fn     func(lo, hi int)
	wg     *sync.WaitGroup
}

type kernelPool struct {
	workers int
	tasks   chan parTask // nil when workers == 1 (serial)
}

func newKernelPool(workers int) *kernelPool {
	p := &kernelPool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan parTask)
		// The submitting goroutine runs shard 0 itself, so workers-1
		// helpers give `workers` shards executing concurrently.
		for i := 0; i < workers-1; i++ {
			go func() {
				for t := range p.tasks {
					t.fn(t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	}
	return p
}

var (
	kpMu   sync.RWMutex
	kp     *kernelPool
	kpOnce sync.Once
)

// The kernel pool publishes its occupancy to the process-wide registry:
// kernel.runs counts sharded kernel invocations, kernel.shards_active
// gauges how many shards are executing right now. Instruments resolve
// once; per-RunShards cost is two atomic ops.
var (
	kernelObsOnce sync.Once
	kernelRuns    *obs.Counter
	kernelShards  *obs.Gauge
)

func kernelObs() (*obs.Counter, *obs.Gauge) {
	kernelObsOnce.Do(func() {
		reg := obs.Default()
		kernelRuns = reg.Counter("kernel.runs")
		kernelShards = reg.Gauge("kernel.shards_active")
	})
	return kernelRuns, kernelShards
}

func ensurePool() {
	kpOnce.Do(func() {
		w := runtime.GOMAXPROCS(0)
		if s := os.Getenv("SB_KERNEL_WORKERS"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				w = v
			}
		}
		kpMu.Lock()
		if kp == nil {
			kp = newKernelPool(w)
		}
		kpMu.Unlock()
	})
}

// KernelWorkers reports the current kernel pool width.
func KernelWorkers() int {
	ensurePool()
	kpMu.RLock()
	defer kpMu.RUnlock()
	return kp.workers
}

// SetKernelWorkers resizes the kernel pool (n < 1 is clamped to 1,
// meaning serial). In-flight kernels finish on the old pool before it
// is torn down; the swap is safe against concurrent RunShards calls,
// which hold the read lock for their full duration.
func SetKernelWorkers(n int) {
	if n < 1 {
		n = 1
	}
	ensurePool()
	kpMu.Lock()
	old := kp
	kp = newKernelPool(n)
	kpMu.Unlock()
	if old != nil && old.tasks != nil {
		close(old.tasks) // idle helpers exit; no submitter can hold old (they re-read kp under the lock)
	}
}

// ShardCount returns how many shards RunShards should split n elements
// into under the current pool: at most the pool width, and never so
// many that a shard drops below minShardWork elements.
func ShardCount(n int) int {
	ensurePool()
	kpMu.RLock()
	w := kp.workers
	kpMu.RUnlock()
	if m := n / minShardWork; w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunShards partitions [0,n) into `shards` contiguous ranges and runs
// fn(shard, lo, hi) for each, returning when all are done. Shard 0 runs
// on the calling goroutine; the rest go to pool helpers (or run inline
// serially when the pool is serial — the shard *count* is honoured
// either way, so callers can allocate per-shard state from ShardCount
// and trust every shard index appears exactly once).
func RunShards(n, shards int, fn func(shard, lo, hi int)) {
	if n <= 0 || shards <= 0 {
		return
	}
	runs, active := kernelObs()
	runs.Inc()
	active.Add(int64(shards))
	defer active.Add(-int64(shards))
	chunk := (n + shards - 1) / shards
	ensurePool()
	kpMu.RLock()
	defer kpMu.RUnlock()
	if kp.tasks == nil || shards == 1 {
		for s := 0; s < shards; s++ {
			lo, hi := min(s*chunk, n), min((s+1)*chunk, n)
			fn(s, lo, hi)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards - 1)
	for s := 1; s < shards; s++ {
		s := s
		lo, hi := min(s*chunk, n), min((s+1)*chunk, n)
		kp.tasks <- parTask{lo: lo, hi: hi, wg: &wg, fn: func(lo, hi int) { fn(s, lo, hi) }}
	}
	fn(0, 0, min(chunk, n))
	wg.Wait()
}

// ParallelFor runs fn over contiguous sub-ranges covering [0,n),
// sharded across the kernel pool. For n below the sharding threshold
// (or a serial pool) this is exactly fn(0, n) on the caller.
func ParallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := ShardCount(n)
	if w == 1 {
		fn(0, n)
		return
	}
	RunShards(n, w, func(_, lo, hi int) { fn(lo, hi) })
}
