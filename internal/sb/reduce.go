package sb

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/adios"
)

// ReduceKernel is the contract for endpoint components (Histogram, Stats
// and kin): a per-rank reduction over the rank's partition that
// cooperates through the communicator and yields one global result per
// timestep. Reduce must be called collectively (every rank, every step);
// the returned value is consumed on rank 0 only. ReservedAxes has the
// same signature as MapKernel's, so a type can serve both loops.
type ReduceKernel[T any] interface {
	// ReservedAxes lists input axes that must not be partitioned.
	ReservedAxes(v *adios.GlobalVar, info *adios.StepInfo) ([]int, error)
	// Reduce combines this rank's block into the step's global result.
	Reduce(in *StepInput) (T, error)
}

// ReduceConfig wires a ReduceKernel into a runnable endpoint component.
type ReduceConfig[T any] struct {
	// Name of the component kind, for errors and metrics.
	Name string
	// InStream / InArray identify the input.
	InStream, InArray string
	// RequireDims, when positive, rejects inputs of any other rank —
	// e.g. Histogram demands one-dimensional data (§III-E).
	RequireDims int
	// Policy selects the partition axis (default PartitionFirstFree).
	Policy PartitionPolicy
	// OutBytes is the per-step output accounting for metrics (endpoint
	// results are tiny and fixed-size).
	OutBytes int64
	// OnResult receives each step's result on rank 0 only, in step
	// order. It typically appends to the component's result log and
	// writes the output file.
	OnResult func(step int, result T) error
}

// RunReduce executes the shared per-rank loop of an endpoint component:
// for every timestep, read this rank's partition, run the collective
// reduction, deliver the result on rank 0 — until the input stream ends.
func RunReduce[T any](env *Env, cfg ReduceConfig[T], kernel ReduceKernel[T]) error {
	if env.Metrics != nil {
		env.Metrics.MarkStarted()
		defer env.Metrics.MarkFinished()
	}
	r, err := env.OpenReader(cfg.InStream)
	if err != nil {
		return fmt.Errorf("%s: attaching reader to %q: %w", cfg.Name, cfg.InStream, err)
	}
	defer r.Close()

	rank, size := env.Comm.Rank(), env.Comm.Size()
	for {
		step := r.NextStep() // absolute: a re-attached reader resumes mid-stream
		info, err := r.BeginStep(env.Ctx())
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		begin := time.Now() // active time: excludes waiting for the producer
		v, ok := info.Var(cfg.InArray)
		if !ok {
			return fmt.Errorf("%s: step %d of stream %q has no array %q", cfg.Name, step, cfg.InStream, cfg.InArray)
		}
		if cfg.RequireDims > 0 && len(v.Dims) != cfg.RequireDims {
			return fmt.Errorf("%s: expects %d-dimensional data, got %d dimensions in %q",
				cfg.Name, cfg.RequireDims, len(v.Dims), v.Name)
		}
		reserved, err := kernel.ReservedAxes(v, info)
		if err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		axis, err := ChooseAxis(cfg.Policy, v.Shape(), reserved...)
		if err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		box := PartitionBox(v.Shape(), axis, size, rank)
		block, err := r.ReadBox(env.Ctx(), cfg.InArray, box)
		if err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		result, err := kernel.Reduce(&StepInput{Info: info, Var: v, Box: box, Block: block, Env: env, Reader: r})
		if err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		if rank == 0 && cfg.OnResult != nil {
			if err := cfg.OnResult(step, result); err != nil {
				return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
			}
		}
		if err := r.EndStep(); err != nil {
			return fmt.Errorf("%s: step %d: %w", cfg.Name, step, err)
		}
		if env.Metrics != nil {
			env.Metrics.RecordStep(step, time.Since(begin), int64(block.Size()*8), cfg.OutBytes)
		}
	}
}
