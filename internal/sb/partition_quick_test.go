package sb

import (
	"testing"
	"testing/quick"

	"repro/internal/ndarray"
)

// The partitioning contract the components lean on: whatever shape,
// rank count, policy and reserved-axis set a kernel throws at it, the
// per-rank bounding boxes must tile the global array exactly — every
// element owned by exactly one rank — and match the sequential
// first-rem-ranks-get-one-extra oracle of Partition1D. testing/quick
// feeds raw bytes which are normalized into small-but-varied configs
// so the exhaustive element walk stays cheap.

// quickPartitionConfig normalizes raw fuzz input into a valid scenario.
type quickPartitionConfig struct {
	shape    []int
	nranks   int
	policy   PartitionPolicy
	reserved []int
}

func normalizePartitionConfig(rawShape []uint8, rawRanks uint8, longest bool, reservedMask uint8) quickPartitionConfig {
	ndim := 1 + int(rawRanks>>4)%4 // 1..4 dims
	shape := make([]int, ndim)
	for i := range shape {
		if i < len(rawShape) {
			shape[i] = int(rawShape[i] % 8) // 0..7: includes empty axes
		} else {
			shape[i] = 1 + i
		}
	}
	cfg := quickPartitionConfig{shape: shape, nranks: 1 + int(rawRanks%8)}
	if longest {
		cfg.policy = PartitionLongestFree
	}
	// Reserve a strict subset of axes so ChooseAxis always has one free.
	for i := 0; i < ndim-1; i++ {
		if reservedMask&(1<<i) != 0 {
			cfg.reserved = append(cfg.reserved, i)
		}
	}
	return cfg
}

func TestPartitionBoxTilesExactlyOnce(t *testing.T) {
	prop := func(rawShape []uint8, rawRanks uint8, longest bool, reservedMask uint8) bool {
		cfg := normalizePartitionConfig(rawShape, rawRanks, longest, reservedMask)
		axis, err := ChooseAxis(cfg.policy, cfg.shape, cfg.reserved...)
		if err != nil {
			t.Logf("ChooseAxis(%v, reserved %v): %v", cfg.shape, cfg.reserved, err)
			return false
		}
		for _, r := range cfg.reserved {
			if axis == r {
				t.Logf("ChooseAxis picked reserved axis %d (shape %v, reserved %v)", axis, cfg.shape, cfg.reserved)
				return false
			}
		}
		if cfg.policy == PartitionLongestFree {
			// Oracle: first unreserved axis of maximal extent.
			want, wantSize := -1, -1
			for i, s := range cfg.shape {
				if !containsAxis(cfg.reserved, i) && s > wantSize {
					want, wantSize = i, s
				}
			}
			if axis != want {
				t.Logf("LongestFree chose axis %d, oracle %d (shape %v, reserved %v)", axis, want, cfg.shape, cfg.reserved)
				return false
			}
		}

		boxes := make([]ndarray.Box, cfg.nranks)
		total := 0
		for rank := range boxes {
			boxes[rank] = PartitionBox(cfg.shape, axis, cfg.nranks, rank)
			if err := boxes[rank].ValidIn(cfg.shape); err != nil {
				t.Logf("rank %d box %v invalid in %v: %v", rank, boxes[rank], cfg.shape, err)
				return false
			}
			total += boxes[rank].Volume()
		}
		if want := ndarray.Volume(cfg.shape); total != want {
			t.Logf("box volumes sum to %d, global volume %d (shape %v axis %d ranks %d)", total, want, cfg.shape, axis, cfg.nranks)
			return false
		}

		// Sequential oracle: the axis is carved into contiguous, ordered
		// runs where the first total%nranks ranks get one extra element.
		base, rem := cfg.shape[axis]/cfg.nranks, cfg.shape[axis]%cfg.nranks
		next := 0
		for rank, b := range boxes {
			wantCount := base
			if rank < rem {
				wantCount++
			}
			if b.Offsets[axis] != next || b.Counts[axis] != wantCount {
				t.Logf("rank %d axis run [%d,%d), oracle [%d,%d)", rank,
					b.Offsets[axis], b.Offsets[axis]+b.Counts[axis], next, next+wantCount)
				return false
			}
			next += wantCount
			// Non-partition axes must span the whole shape.
			for d := range cfg.shape {
				if d != axis && (b.Offsets[d] != 0 || b.Counts[d] != cfg.shape[d]) {
					t.Logf("rank %d does not span axis %d: %v (shape %v)", rank, d, b, cfg.shape)
					return false
				}
			}
		}
		if next != cfg.shape[axis] {
			t.Logf("axis runs end at %d, want %d", next, cfg.shape[axis])
			return false
		}

		// Exhaustive walk: every global index lands in exactly one box.
		// An empty axis means there are no indices to own.
		if ndarray.Volume(cfg.shape) == 0 {
			return true
		}
		idx := make([]int, len(cfg.shape))
		for {
			owners := 0
			for _, b := range boxes {
				if b.Contains(idx) {
					owners++
				}
			}
			if owners != 1 {
				t.Logf("index %v owned by %d ranks (shape %v axis %d ranks %d)", idx, owners, cfg.shape, axis, cfg.nranks)
				return false
			}
			if !nextIndex(idx, cfg.shape) {
				break
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func containsAxis(axes []int, i int) bool {
	for _, a := range axes {
		if a == i {
			return true
		}
	}
	return false
}

// nextIndex advances idx odometer-style within shape; false when the
// walk wraps (or the shape has an empty axis, making the space empty).
func nextIndex(idx, shape []int) bool {
	for _, s := range shape {
		if s == 0 {
			return false
		}
	}
	for d := len(idx) - 1; d >= 0; d-- {
		idx[d]++
		if idx[d] < shape[d] {
			return true
		}
		idx[d] = 0
	}
	return false
}

func TestChooseAxisAllReserved(t *testing.T) {
	if _, err := ChooseAxis(PartitionFirstFree, []int{4, 4}, 0, 1); err == nil {
		t.Fatal("ChooseAxis succeeded with every axis reserved")
	}
	if _, err := ChooseAxis(PartitionPolicy(99), []int{4}); err == nil {
		t.Fatal("ChooseAxis accepted an unknown policy")
	}
}
