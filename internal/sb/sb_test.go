package sb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adios"
	"repro/internal/flexpath"
	"repro/internal/mpi"
	"repro/internal/ndarray"
)

func TestChooseAxisFirstFree(t *testing.T) {
	cases := []struct {
		shape    []int
		reserved []int
		want     int
		wantErr  bool
	}{
		{[]int{4, 5}, nil, 0, false},
		{[]int{4, 5}, []int{0}, 1, false},
		{[]int{4, 5, 6}, []int{0, 1}, 2, false},
		{[]int{4}, []int{0}, 0, true},
		{nil, nil, 0, true},
	}
	for _, c := range cases {
		got, err := ChooseAxis(PartitionFirstFree, c.shape, c.reserved...)
		if (err != nil) != c.wantErr {
			t.Errorf("ChooseAxis(first, %v, %v) err = %v", c.shape, c.reserved, err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ChooseAxis(first, %v, %v) = %d, want %d", c.shape, c.reserved, got, c.want)
		}
	}
}

func TestChooseAxisLongestFree(t *testing.T) {
	got, err := ChooseAxis(PartitionLongestFree, []int{4, 100, 6}, nil...)
	if err != nil || got != 1 {
		t.Fatalf("got %d, %v", got, err)
	}
	got, err = ChooseAxis(PartitionLongestFree, []int{4, 100, 6}, 1)
	if err != nil || got != 2 {
		t.Fatalf("with reserved longest: got %d, %v", got, err)
	}
	if _, err := ChooseAxis(PartitionLongestFree, []int{4}, 0); err == nil {
		t.Fatal("fully reserved shape accepted")
	}
}

func TestChooseAxisUnknownPolicy(t *testing.T) {
	if _, err := ChooseAxis(PartitionPolicy(99), []int{4}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics("select", 4)
	if m.Component() != "select" || m.Ranks() != 4 {
		t.Fatal("identity lost")
	}
	for rank := 0; rank < 4; rank++ {
		m.RecordStep(0, time.Duration(rank+1)*time.Millisecond, 1000, 500)
	}
	st, ok := m.Step(0)
	if !ok {
		t.Fatal("step 0 missing")
	}
	if st.Samples != 4 || st.BytesIn != 4000 || st.BytesOut != 2000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanDur != 2500*time.Microsecond {
		t.Fatalf("mean = %v", st.MeanDur)
	}
	// Per-proc throughput: 1000 bytes per proc / 2.5ms = 400000 B/s.
	if tp := st.PerProcThroughput(); tp < 399999 || tp > 400001 {
		t.Fatalf("throughput = %v", tp)
	}
	if _, ok := m.Step(1); ok {
		t.Fatal("phantom step")
	}
	m.RecordStep(2, time.Millisecond, 1, 1)
	steps := m.Steps()
	if len(steps) != 2 || steps[0].Step != 0 || steps[1].Step != 2 {
		t.Fatalf("steps = %+v", steps)
	}
	if m.TotalBytesIn() != 4001 || m.TotalBytesOut() != 2001 {
		t.Fatalf("totals = %d/%d", m.TotalBytesIn(), m.TotalBytesOut())
	}
}

func TestMetricsElapsed(t *testing.T) {
	m := NewMetrics("x", 1)
	if m.Elapsed() != 0 {
		t.Fatal("elapsed before marks should be 0")
	}
	m.MarkStarted()
	time.Sleep(5 * time.Millisecond)
	m.MarkFinished()
	if m.Elapsed() < 5*time.Millisecond {
		t.Fatalf("elapsed = %v", m.Elapsed())
	}
	// First start wins.
	first := m.Elapsed()
	m.MarkStarted()
	m.MarkFinished()
	if m.Elapsed() < first {
		t.Fatal("second MarkStarted reset the clock")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics("x", 8)
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < 100; s++ {
				m.RecordStep(s, time.Microsecond, 10, 10)
			}
		}()
	}
	wg.Wait()
	if len(m.Steps()) != 100 {
		t.Fatalf("steps = %d", len(m.Steps()))
	}
	st, _ := m.Step(50)
	if st.Samples != 8 || st.BytesIn != 80 {
		t.Fatalf("step 50 = %+v", st)
	}
}

func TestUsageError(t *testing.T) {
	err := &UsageError{Component: "select", Usage: "a b c", Problem: "too few"}
	s := err.Error()
	for _, want := range []string{"select", "too few", "a b c"} {
		if !strings.Contains(s, want) {
			t.Errorf("error %q missing %q", s, want)
		}
	}
}

// doubler is a trivial MapKernel used to exercise RunMap end to end.
type doubler struct{}

func (doubler) ReservedAxes(v *adios.GlobalVar, info *adios.StepInfo) ([]int, error) { return nil, nil }
func (doubler) Transform(in *StepInput) (*StepOutput, error) {
	out := make([]float64, in.Block.Size())
	for i, v := range in.Block.Data() {
		out[i] = 2 * v
	}
	return &StepOutput{GlobalDims: in.Var.Dims, Box: in.Box, Data: out}, nil
}

func TestRunMapEndToEnd(t *testing.T) {
	broker := flexpath.NewBroker()
	transport := BrokerTransport{Broker: broker}
	const steps, n = 3, 24

	var wg sync.WaitGroup
	errs := make(chan error, 8)

	// Producer: 1 rank publishing 1-D arrays.
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs <- mpi.Run(1, func(comm *mpi.Comm) error {
			env := &Env{Comm: comm, Transport: transport}
			w, err := env.OpenWriter("in.fp")
			if err != nil {
				return err
			}
			defer w.Close()
			for s := 0; s < steps; s++ {
				arr := ndarray.New(ndarray.Dim{Name: "n", Size: n})
				for i := range arr.Data() {
					arr.Data()[i] = float64(s*100 + i)
				}
				w.BeginStep()
				if err := w.SetAttribute("origin", "producer"); err != nil {
					return err
				}
				if err := w.WriteArray("x", arr); err != nil {
					return err
				}
				if err := w.EndStep(env.Ctx()); err != nil {
					return err
				}
			}
			return nil
		})
	}()

	// Map stage: 3 ranks doubling.
	metrics := NewMetrics("doubler", 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs <- mpi.Run(3, func(comm *mpi.Comm) error {
			env := &Env{Comm: comm, Transport: transport, Metrics: metrics}
			return RunMap(env, MapConfig{
				Name:     "doubler",
				InStream: "in.fp", InArray: "x",
				OutStream: "out.fp", OutArray: "y",
				ForwardAttrs: true,
			}, doubler{})
		})
	}()

	// Consumer: 2 ranks verifying.
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs <- mpi.Run(2, func(comm *mpi.Comm) error {
			env := &Env{Comm: comm, Transport: transport}
			r, err := env.OpenReader("out.fp")
			if err != nil {
				return err
			}
			defer r.Close()
			for s := 0; s < steps; s++ {
				info, err := r.BeginStep(env.Ctx())
				if err != nil {
					return fmt.Errorf("consumer step %d: %w", s, err)
				}
				if info.Attrs["origin"] != "producer" {
					return fmt.Errorf("attribute not forwarded: %v", info.Attrs)
				}
				v, ok := info.Var("y")
				if !ok {
					return errors.New("y missing")
				}
				box := ndarray.PartitionAlong(v.Shape(), 0, 2, comm.Rank())
				got, err := r.ReadBox(env.Ctx(), "y", box)
				if err != nil {
					return err
				}
				for i, val := range got.Data() {
					want := 2 * float64(s*100+box.Offsets[0]+i)
					if val != want {
						return fmt.Errorf("step %d elem %d = %v, want %v", s, i, val, want)
					}
				}
				if err := r.EndStep(); err != nil {
					return err
				}
			}
			return nil
		})
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if got := len(metrics.Steps()); got != steps {
		t.Fatalf("metrics recorded %d steps, want %d", got, steps)
	}
	st, _ := metrics.Step(0)
	if st.Samples != 3 || st.BytesIn != n*8 {
		t.Fatalf("step stats = %+v", st)
	}
}

func TestOpenWriterGroupDepthPrecedence(t *testing.T) {
	// The Env's depth (launch script -q) must override the default the
	// caller supplies (the XML method parameter); the attach with a
	// conflicting depth on the second handle proves which one won.
	broker := flexpath.NewBroker()
	transport := BrokerTransport{Broker: broker}
	err := mpi.Run(2, func(comm *mpi.Comm) error {
		env := &Env{Comm: comm, Transport: transport, QueueDepth: 7}
		if _, err := env.OpenWriterGroup("prec.fp", nil, 3); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The stream was created with depth 7 (env wins): attaching a reader
	// succeeds, attaching another writer with depth 3 must conflict.
	if _, err := broker.AttachWriter("prec2.fp", 0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.AttachWriter("prec.fp", 0, 2, 3); err == nil {
		t.Fatal("stream accepted conflicting depth; env precedence broken")
	}
}

func TestOpenWriterGroupValidates(t *testing.T) {
	cfg, err := adios.ParseConfig([]byte(`
<adios-config>
  <adios-group name="g">
    <var name="n" type="integer"/>
    <var name="x" type="double" dimensions="n"/>
  </adios-group>
</adios-config>`))
	if err != nil {
		t.Fatal(err)
	}
	broker := flexpath.NewBroker()
	err = mpi.Run(1, func(comm *mpi.Comm) error {
		env := &Env{Comm: comm, Transport: BrokerTransport{Broker: broker}}
		w, err := env.OpenWriterGroup("val.fp", cfg.Group("g"), 0)
		if err != nil {
			return err
		}
		defer w.Close()
		w.BeginStep()
		bad := ndarray.New(ndarray.Dim{Name: "wrong", Size: 4})
		if err := w.WriteArray("x", bad); err == nil {
			return errors.New("mislabeled write accepted despite group declaration")
		}
		good := ndarray.New(ndarray.Dim{Name: "n", Size: 4})
		return w.WriteArray("x", good)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// failingKernel exercises the error path of RunMap.
type failingKernel struct{}

func (failingKernel) ReservedAxes(v *adios.GlobalVar, info *adios.StepInfo) ([]int, error) {
	return nil, nil
}
func (failingKernel) Transform(in *StepInput) (*StepOutput, error) {
	return nil, errors.New("kernel exploded")
}

func TestRunMapKernelErrorPropagates(t *testing.T) {
	broker := flexpath.NewBroker()
	transport := BrokerTransport{Broker: broker}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mpi.Run(1, func(comm *mpi.Comm) error {
			env := &Env{Comm: comm, Transport: transport}
			w, _ := env.OpenWriter("fe.fp")
			defer w.Close()
			w.BeginStep()
			w.WriteArray("x", ndarray.New(ndarray.Dim{Name: "n", Size: 4}))
			return w.EndStep(env.Ctx())
		})
	}()
	err := mpi.Run(1, func(comm *mpi.Comm) error {
		env := &Env{Comm: comm, Transport: transport}
		return RunMap(env, MapConfig{
			Name: "boom", InStream: "fe.fp", InArray: "x",
			OutStream: "feo.fp", OutArray: "y",
		}, failingKernel{})
	})
	if err == nil || !strings.Contains(err.Error(), "kernel exploded") {
		t.Fatalf("err = %v", err)
	}
	wg.Wait()
}

func TestRunMapMissingArray(t *testing.T) {
	broker := flexpath.NewBroker()
	transport := BrokerTransport{Broker: broker}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mpi.Run(1, func(comm *mpi.Comm) error {
			env := &Env{Comm: comm, Transport: transport}
			w, _ := env.OpenWriter("ma.fp")
			defer w.Close()
			w.BeginStep()
			w.WriteArray("other", ndarray.New(ndarray.Dim{Name: "n", Size: 4}))
			return w.EndStep(env.Ctx())
		})
	}()
	err := mpi.Run(1, func(comm *mpi.Comm) error {
		env := &Env{Comm: comm, Transport: transport}
		return RunMap(env, MapConfig{
			Name: "m", InStream: "ma.fp", InArray: "x",
			OutStream: "mao.fp", OutArray: "y",
		}, doubler{})
	})
	if err == nil || !strings.Contains(err.Error(), `no array "x"`) {
		t.Fatalf("err = %v", err)
	}
	wg.Wait()
}
