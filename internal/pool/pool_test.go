package pool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {256, 0}, {257, 1}, {512, 1},
		{1 << 20, 12}, {1 << 26, 18}, {1<<26 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetReleaseRecycles(t *testing.T) {
	b := Get(1000)
	if b.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", b.Len())
	}
	if cap(b.Bytes()) != 1024 {
		t.Fatalf("cap = %d, want 1024", cap(b.Bytes()))
	}
	b.Bytes()[0] = 0xAB
	b.Release()
	// The next same-class Get should (in a single-goroutine test) see the
	// recycled storage.
	b2 := Get(512)
	if b2.Len() != 512 {
		t.Fatalf("Len = %d, want 512", b2.Len())
	}
	b2.Release()
}

func TestWrapNeverRecycles(t *testing.T) {
	p := []byte{1, 2, 3}
	b := Wrap(p)
	b.Retain()
	b.Release()
	b.Release()
	if &p[0] != &b.Bytes()[0] {
		t.Fatal("Wrap must alias the caller slice")
	}
}

func TestOversizedUnpooled(t *testing.T) {
	b := Get(1<<26 + 1)
	if b.class != -1 {
		t.Fatalf("oversized Buf has class %d, want -1", b.class)
	}
	b.Release()
}

func TestRetainReleasePanics(t *testing.T) {
	b := Get(16)
	b.Release()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Retain after final Release did not panic")
			}
		}()
		b.Retain()
	}()
}

// TestConcurrentRetainRelease hammers the refcount from many goroutines:
// each holder retains, reads, and releases while the owner releases its
// own ref, so recycling races against late readers only if the count is
// wrong.
func TestConcurrentRetainRelease(t *testing.T) {
	const rounds, holders = 200, 8
	for r := 0; r < rounds; r++ {
		b := Get(4096)
		for i := range b.Bytes() {
			b.Bytes()[i] = byte(r)
		}
		var wg sync.WaitGroup
		for h := 0; h < holders; h++ {
			b.Retain()
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := b.Bytes()
				if p[0] != p[len(p)-1] {
					t.Error("torn read under refcount")
				}
				b.Release()
			}()
		}
		b.Release()
		wg.Wait()
	}
}
