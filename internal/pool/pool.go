// Package pool provides size-classed, reference-counted byte buffers
// for the transport hot path. Every timestep that crosses the stream
// fabric needs a metadata blob and a payload blob; without pooling each
// one is a fresh heap allocation that the garbage collector must later
// chase. A Buf instead travels with an explicit reference count: the
// publishing writer hands ownership to the broker, the broker hands
// borrowed views (or retained refs) to N readers, and when the step
// retires the storage returns to a sync.Pool keyed by size class.
//
// Ownership contract:
//
//   - Get returns a Buf with one reference, owned by the caller.
//   - Retain adds a reference (a second holder, e.g. a TCP response in
//     flight while the step could retire underneath it).
//   - Release drops one reference; the final Release recycles the
//     storage. Using Bytes() after the final Release is a use-after-free
//     in spirit — the bytes may be overwritten by an unrelated step.
//   - Wrap adopts a caller-owned slice without pooling: Release is
//     bookkeeping only and the bytes are never recycled. It lets one
//     code path serve both pooled and unpooled producers.
package pool

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Size classes are powers of two from 1<<minClassBits to 1<<maxClassBits.
// Requests larger than the top class are allocated directly and never
// recycled (they are rare: a payload that big dominates its own cost).
const (
	minClassBits = 8  // 256 B
	maxClassBits = 26 // 64 MiB
	numClasses   = maxClassBits - minClassBits + 1
)

var classes [numClasses]sync.Pool

// Stats counts pool traffic, for tests and leak diagnosis.
type Stats struct {
	Gets     atomic.Int64 // Get calls served
	News     atomic.Int64 // Gets that had to allocate fresh storage
	Recycles atomic.Int64 // final Releases that returned storage to a class
}

var stats Stats

// StatsSnapshot returns the current counter values.
func StatsSnapshot() (gets, news, recycles int64) {
	return stats.Gets.Load(), stats.News.Load(), stats.Recycles.Load()
}

// The pool publishes its counters into the process-wide metrics
// registry as computed values (no double bookkeeping, no hot-path
// cost): gets, news (pool misses that allocated), hits (gets served
// from a class), and recycles.
func init() {
	reg := obs.Default()
	reg.RegisterFunc("pool.gets", func() int64 { return stats.Gets.Load() })
	reg.RegisterFunc("pool.misses", func() int64 { return stats.News.Load() })
	reg.RegisterFunc("pool.hits", func() int64 { return stats.Gets.Load() - stats.News.Load() })
	reg.RegisterFunc("pool.recycles", func() int64 { return stats.Recycles.Load() })
}

// genCtr stamps every Buf incarnation (each Get or Wrap) with a unique
// generation, letting trace spans tie a fetched payload and its
// retirement to one physical reuse of pooled storage.
var genCtr atomic.Uint64

// Buf is a reference-counted byte buffer. The zero value is not usable;
// obtain one from Get, Wrap, or WrapOnFree.
type Buf struct {
	data   []byte
	refs   atomic.Int32
	class  int32  // class index, or -1 for unpooled storage
	gen    uint64 // incarnation stamp, fresh per Get/Wrap (see genCtr)
	onFree func() // WrapOnFree hook, run once by the final Release
}

// classFor returns the smallest class whose capacity holds n, or -1 if n
// exceeds the largest class.
func classFor(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	c := 0
	for n > 1<<(minClassBits+c) {
		c++
	}
	return c
}

// Get returns a Buf whose Bytes() has length n (contents unspecified)
// and one reference.
func Get(n int) *Buf {
	stats.Gets.Add(1)
	c := classFor(n)
	if c < 0 {
		stats.News.Add(1)
		b := &Buf{data: make([]byte, n), class: -1, gen: genCtr.Add(1)}
		b.refs.Store(1)
		return b
	}
	if v := classes[c].Get(); v != nil {
		b := v.(*Buf)
		b.data = b.data[:n]
		b.gen = genCtr.Add(1)
		b.refs.Store(1)
		return b
	}
	stats.News.Add(1)
	b := &Buf{data: make([]byte, n, 1<<(minClassBits+c)), class: int32(c), gen: genCtr.Add(1)}
	b.refs.Store(1)
	return b
}

// Wrap adopts a caller-owned slice as an unpooled Buf with one
// reference. Release never recycles the storage, so views of a wrapped
// Buf stay valid as long as the slice itself.
func Wrap(p []byte) *Buf {
	b := &Buf{data: p, class: -1, gen: genCtr.Add(1)}
	b.refs.Store(1)
	return b
}

// WrapOnFree is Wrap with a reclamation hook: the final Release runs
// onFree exactly once instead of recycling anything. It is the seam
// that lets externally managed storage — a shared-memory ring slot
// owned by another process, say — ride the same refcount lifecycle as
// pooled buffers: the broker retires a step, the last reference drops,
// and the hook returns the slot to its owner. The hook may run under
// broker locks, so it must not block or re-enter the broker; atomic
// bookkeeping only.
func WrapOnFree(p []byte, onFree func()) *Buf {
	b := Wrap(p)
	b.onFree = onFree
	return b
}

// Gen returns the buffer's incarnation stamp: unique per Get/Wrap, so
// two holders seeing the same Gen hold the same physical incarnation
// (not a recycled reuse of the storage).
func (b *Buf) Gen() uint64 { return b.gen }

// Bytes returns the buffer contents. The view is valid only while the
// caller holds a reference.
func (b *Buf) Bytes() []byte { return b.data }

// Len returns the buffer length.
func (b *Buf) Len() int { return len(b.data) }

// Refs returns the current reference count (for tests).
func (b *Buf) Refs() int { return int(b.refs.Load()) }

// Retain adds a reference and returns b for chaining.
func (b *Buf) Retain() *Buf {
	if b.refs.Add(1) <= 1 {
		panic("pool: Retain of released Buf")
	}
	return b
}

// Release drops one reference. The final Release returns pooled storage
// to its size class; further use of Bytes() is invalid.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	n := b.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("pool: Release of already-released Buf")
	}
	if b.onFree != nil {
		f := b.onFree
		b.onFree = nil
		f()
	}
	if b.class < 0 {
		return // unpooled or oversized: leave it to the GC
	}
	stats.Recycles.Add(1)
	b.data = b.data[:cap(b.data)]
	classes[b.class].Put(b)
}
