package cost

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func span(kind obs.Kind, stream string, step, rank int, bytes int64, note string, durNs int64) obs.Span {
	return obs.Span{
		Kind: kind, Stream: stream, Step: step, Rank: rank,
		Bytes: bytes, Note: note, Start: 1_000, End: 1_000 + durNs,
	}
}

func sampleSpans() []obs.Span {
	var spans []obs.Span
	// Two steps of a 2-rank "magnitude" stage: kernel 1ms per rank per
	// step (2ms summed), stage.step 1.5ms per rank, 4096 bytes in per
	// rank.
	for step := 0; step < 2; step++ {
		for rank := 0; rank < 2; rank++ {
			spans = append(spans,
				span(obs.KindKernelTransform, "", step, rank, 2048, "magnitude", 1_000_000),
				span(obs.KindStageStep, "", step, rank, 4096, "magnitude", 1_500_000))
		}
	}
	// Broker completes two steps of 8 KiB each on the input edge.
	spans = append(spans,
		span(obs.KindBrokerStep, "parts.fp", 0, 0, 8192, "", 0),
		span(obs.KindBrokerStep, "parts.fp", 1, 0, 8192, "", 0))
	// A capture-only stream sees publishes but no broker completion.
	spans = append(spans,
		span(obs.KindWriterPublish, "hist.fp", 0, 0, 512, "", 0),
		span(obs.KindWriterPublish, "hist.fp", 1, 0, 512, "", 0))
	// Failed spans must not pollute the profile.
	failed := span(obs.KindStageStep, "", 0, 0, 1<<30, "magnitude", 9e9)
	failed.Err = "boom"
	spans = append(spans, failed)
	return spans
}

func TestFromSpans(t *testing.T) {
	p := FromSpans(sampleSpans())
	st, ok := p.Stages["magnitude"]
	if !ok {
		t.Fatalf("stage magnitude missing: %v", p.StageNames())
	}
	if st.Ranks != 2 || st.Steps != 2 {
		t.Fatalf("ranks/steps = %d/%d, want 2/2", st.Ranks, st.Steps)
	}
	if st.KernelNsPerStep != 2_000_000 {
		t.Fatalf("kernel ns/step = %v, want 2e6", st.KernelNsPerStep)
	}
	if st.StepNsPerStep != 1_500_000 {
		t.Fatalf("step ns/step = %v, want 1.5e6", st.StepNsPerStep)
	}
	// 4096 per rank × 2 ranks, summed across the group per step.
	if st.BytesInPerStep != 8192 {
		t.Fatalf("bytes in/step = %v, want 8192", st.BytesInPerStep)
	}
	if got := p.EdgeBytes("parts.fp"); got != 8192 {
		t.Fatalf("edge parts.fp bytes/step = %v, want 8192", got)
	}
	if got := p.EdgeBytes("hist.fp"); got != 512 {
		t.Fatalf("publish-only edge bytes/step = %v, want 512", got)
	}
	if got := p.EdgeBytes("nope.fp"); got != 0 {
		t.Fatalf("unknown edge bytes/step = %v, want 0", got)
	}
}

func TestApplyRegistry(t *testing.T) {
	p := FromSpans(sampleSpans())
	p.ApplyRegistry(map[string]int64{
		"comp.magnitude.bytes_in":  1 << 40, // spans win: must not overwrite
		"comp.magnitude.bytes_out": 2048,
	})
	st := p.Stages["magnitude"]
	if st.BytesInPerStep != 8192 {
		t.Fatalf("registry overwrote span-derived bytes_in: %v", st.BytesInPerStep)
	}
	if st.BytesOutPerStep != 1024 {
		t.Fatalf("bytes out/step = %v, want 1024", st.BytesOutPerStep)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := FromSpans(sampleSpans())
	p.Workflow = "crack"
	p.Transport = "inproc"
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	q, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Workflow != "crack" || q.Transport != "inproc" {
		t.Fatalf("meta lost: %+v", q)
	}
	if q.Stages["magnitude"].KernelNsPerStep != p.Stages["magnitude"].KernelNsPerStep {
		t.Fatal("stage lost in round trip")
	}
	if q.EdgeBytes("parts.fp") != 8192 {
		t.Fatal("edge lost in round trip")
	}
}

func TestLoadEmptyMaps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stages == nil || p.Edges == nil {
		t.Fatal("Load must normalize nil maps")
	}
}

func TestLoadTrace(t *testing.T) {
	tr := obs.NewTracer(0)
	for _, sp := range sampleSpans() {
		tr.Emit(sp)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stages["magnitude"] == nil || p.Stages["magnitude"].KernelNsPerStep != 2_000_000 {
		t.Fatalf("trace profile wrong: %+v", p.Stages["magnitude"])
	}

	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(bad); err == nil {
		t.Fatal("want error for malformed trace line")
	}
}

func TestPredictFitsMeasuredPoint(t *testing.T) {
	m := DefaultModel()
	st := &Stage{Component: "x", Ranks: 2, Steps: 4, KernelNsPerStep: 2e6, StepNsPerStep: 3e6}
	// At the measured rank count the prediction must reproduce the
	// measurement (the fixed term is fitted there).
	if got := m.Predict(st, 0, st.Ranks); math.Abs(got-st.StepNsPerStep) > 1 {
		t.Fatalf("Predict at measured point = %v, want %v", got, st.StepNsPerStep)
	}
	// Unmeasured stages fall back to the floor, still monotone in the
	// parallel term.
	blank := &Stage{Component: "y", KernelNsPerStep: 4e6}
	if m.Predict(blank, 0, 4) >= m.Predict(blank, 0, 1) {
		// 4e6/4 + c*4 vs 4e6 + c — must shrink
		t.Fatal("parallel work must shrink with ranks")
	}
}

func TestTransferNs(t *testing.T) {
	m := DefaultModel()
	if got := m.TransferNs(0, "tcp"); got != 0 {
		t.Fatalf("zero bytes must cost 0, got %v", got)
	}
	if m.TransferNs(1<<20, "tcp") <= m.TransferNs(1<<20, "inproc") {
		t.Fatal("tcp must cost more than inproc for the same bytes")
	}
	if m.TransferNs(1<<20, "weird") <= 0 {
		t.Fatal("unknown kinds must use the fallback bandwidth")
	}
}

// TestKneeNotMax pins the headline behavior: the optimizer must pick
// the scaling knee, not the biggest rank count. With P=2e6 and
// c=1.5e5 the sweep is T(1)=2.15e6, T(2)=1.3e6, T(3)≈1.117e6,
// T(4)=1.1e6 (min), T(5)=1.15e6 — tol 0.1 puts the threshold at
// 1.21e6, so the knee is 3 even with 8 ranks available.
func TestKneeNotMax(t *testing.T) {
	m := Model{PerRankNs: 1.5e5, MinFixedNs: 0}
	st := &Stage{Component: "x", Ranks: 1, Steps: 4, KernelNsPerStep: 2e6, StepNsPerStep: 2.15e6}
	knee, cands := m.Knee(st, 0, 8, 0.10)
	if knee != 3 {
		t.Fatalf("knee = %d, want 3 (candidates %+v)", knee, cands)
	}
	if len(cands) != 8 {
		t.Fatalf("candidate sweep len = %d, want 8", len(cands))
	}
	if math.Abs(cands[3].PredictedNs-1.1e6) > 1 {
		t.Fatalf("T(4) = %v, want 1.1e6", cands[3].PredictedNs)
	}
	// With zero tolerance the knee is the true minimum.
	if knee0, _ := m.Knee(st, 0, 8, 0); knee0 != 4 {
		t.Fatalf("tol=0 knee = %d, want 4", knee0)
	}
}

func TestKneeDegenerate(t *testing.T) {
	m := DefaultModel()
	st := &Stage{Component: "x"}
	if knee, cands := m.Knee(st, 0, 0, 0.1); knee != 1 || len(cands) != 1 {
		t.Fatalf("maxRanks<1 must clamp to 1, got knee=%d cands=%d", knee, len(cands))
	}
}

// SynthesizeStage turns registry counters into a stage entry for
// components with no span seam (reduce endpoints).
func TestSynthesizeStage(t *testing.T) {
	snap := map[string]int64{
		"comp.histogram.step_samples": 6,
		"comp.histogram.step_ns.mean": 120000,
		"comp.histogram.bytes_in":     960000,
	}
	st := SynthesizeStage("histogram", 2, snap)
	if st == nil {
		t.Fatal("no stage synthesized")
	}
	if st.Ranks != 2 || st.Steps != 3 {
		t.Errorf("ranks/steps = %d/%d, want 2/3", st.Ranks, st.Steps)
	}
	if st.StepNsPerStep != 120000 {
		t.Errorf("step ns = %v, want 120000", st.StepNsPerStep)
	}
	if st.BytesInPerStep != 320000 || st.BytesOutPerStep != 0 {
		t.Errorf("bytes in/out = %v/%v, want 320000/0", st.BytesInPerStep, st.BytesOutPerStep)
	}
	if st.KernelNsPerStep != 0 {
		t.Error("synthesized stage must have no kernel share (not rank-rewritable)")
	}
	if SynthesizeStage("missing", 1, snap) != nil {
		t.Error("stage synthesized with no samples")
	}
	// Ranks <= 0 clamps to 1 rather than dividing by zero.
	if st := SynthesizeStage("histogram", 0, snap); st == nil || st.Ranks != 1 || st.Steps != 6 {
		t.Errorf("clamped synth = %+v", st)
	}
}
