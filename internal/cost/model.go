package cost

import "math"

// Model is the analytic queue/transfer model the planner scores
// candidate plans with. A stage's per-step wall time at R ranks is
//
//	T(R) = F + P/R + c·R
//
// where P is the parallelizable work (the kernel summed over ranks
// plus the stage's transfer volume over its transport), c the per-rank
// coordination overhead of one step (attach bookkeeping, per-block
// metadata, partition assembly), and F the fixed remainder fitted at
// the measured point. P/R falls, c·R grows — so T has a genuine
// minimum, and the strong-scaling curve flattens into the knee the
// Fig. 10 data shows past 4–6 ranks.
type Model struct {
	// Bandwidth maps a transport kind to its effective payload
	// bandwidth in bytes/second. Kinds absent from the map use a
	// conservative cross-node default.
	Bandwidth map[string]float64
	// PerRankNs is c: the per-rank per-step coordination overhead.
	PerRankNs float64
	// MinFixedNs floors the fitted fixed term, so a noisy measurement
	// cannot fit a negative overhead.
	MinFixedNs float64
}

// DefaultModel returns the model used when the caller supplies none.
// The bandwidth ordering (inproc > shm > uds > tcp) matches the
// BENCH_PR7 four-way transport ablation; the absolute values are
// deliberately round — the planner's decisions depend on ordering and
// knee position, which tolerate 2× bandwidth error.
func DefaultModel() Model {
	return Model{
		Bandwidth: map[string]float64{
			"inproc": 12e9,
			"shm":    8e9,
			"uds":    3e9,
			"tcp":    1.5e9,
		},
		PerRankNs:  40e3,
		MinFixedNs: 20e3,
	}
}

// bw returns the effective bandwidth for a transport kind.
func (m Model) bw(kind string) float64 {
	if v, ok := m.Bandwidth[kind]; ok && v > 0 {
		return v
	}
	return 1e9
}

// TransferNs predicts moving bytes of payload over a transport kind in
// one step.
func (m Model) TransferNs(bytes float64, kind string) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / m.bw(kind) * 1e9
}

// Predict returns the modeled per-step wall time of a stage run at R
// ranks, with transferNs the per-step cost of moving the stage's input
// and output volume (see TransferNs). The fixed term is fitted at the
// stage's measured point: measured = F + P/Rm + c·Rm solved for F.
func (m Model) Predict(st *Stage, transferNs float64, ranks int) float64 {
	if ranks < 1 {
		ranks = 1
	}
	p := st.KernelNsPerStep + transferNs
	return m.fixed(st, p) + p/float64(ranks) + m.PerRankNs*float64(ranks)
}

// fixed fits F from the stage's measured point, floored at MinFixedNs.
func (m Model) fixed(st *Stage, p float64) float64 {
	if st.Ranks <= 0 || st.StepNsPerStep <= 0 {
		return m.MinFixedNs
	}
	rm := float64(st.Ranks)
	f := st.StepNsPerStep - p/rm - m.PerRankNs*rm
	if f < m.MinFixedNs {
		return m.MinFixedNs
	}
	return f
}

// Candidate is one rank count's predicted per-step cost.
type Candidate struct {
	Ranks       int
	PredictedNs float64
}

// Knee sweeps rank counts 1..maxRanks and returns the scaling knee:
// the smallest rank count whose predicted cost is within tol of the
// best candidate's. This is the "stop where the curve flattens" rule —
// past the knee, extra ranks buy less than tol improvement, exactly
// the flattening the Fig. 10 strong-scaling data shows. The full
// candidate sweep is returned for explain output.
func (m Model) Knee(st *Stage, transferNs float64, maxRanks int, tol float64) (int, []Candidate) {
	if maxRanks < 1 {
		maxRanks = 1
	}
	if tol < 0 {
		tol = 0
	}
	cands := make([]Candidate, maxRanks)
	best := math.Inf(1)
	for r := 1; r <= maxRanks; r++ {
		t := m.Predict(st, transferNs, r)
		cands[r-1] = Candidate{Ranks: r, PredictedNs: t}
		if t < best {
			best = t
		}
	}
	for _, c := range cands {
		if c.PredictedNs <= best*(1+tol) {
			return c.Ranks, cands
		}
	}
	return maxRanks, cands
}
