// Package cost turns a run's observability exhaust — trace spans and
// registry metrics — into a serializable per-stage/per-edge profile,
// and fits an analytic scaling model to it. The profile is the bridge
// between the obs layer (what a run actually cost) and the plan layer
// (what a candidate plan would cost): the workflow planner scores rank
// counts, fusion, and per-edge transports against it, the what-if mode
// validates its predictions offline against a recording, and the
// elastic-rescale supervisor uses the same registry series the profile
// is distilled from.
//
// A profile comes from one of three places, all equivalent:
//
//   - a live run's trace ring (sbrun -profile-out, cost.FromSpans);
//   - a -trace JSONL file written by a previous run (cost.LoadTrace);
//   - a recorded log directory replayed offline (replay.Profile).
package cost

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

// Stage is the measured per-step cost of one component.
type Stage struct {
	Component string `json:"component"`
	// Ranks is the communicator size the measurements were taken at —
	// the fitting point of the scaling model.
	Ranks int `json:"ranks"`
	// Steps is how many distinct timesteps contributed samples.
	Steps int `json:"steps"`
	// KernelNsPerStep is the kernel compute of one timestep summed
	// across ranks — the parallelizable share of the stage's work.
	// Zero for components without a kernel.transform seam.
	KernelNsPerStep float64 `json:"kernel_ns_per_step,omitempty"`
	// StepNsPerStep is the mean per-rank active wall time of one
	// timestep (the stage.step span duration), excluding the wait for
	// the producer.
	StepNsPerStep float64 `json:"step_ns_per_step,omitempty"`
	// BytesInPerStep / BytesOutPerStep are payload bytes the stage
	// reads and writes per timestep, summed across ranks.
	BytesInPerStep  float64 `json:"bytes_in_per_step,omitempty"`
	BytesOutPerStep float64 `json:"bytes_out_per_step,omitempty"`
}

// Edge is the measured per-step payload volume of one stream.
type Edge struct {
	Stream string `json:"stream"`
	Steps  int    `json:"steps"`
	// BytesPerStep is the total payload published per fully completed
	// timestep, summed across the writer group.
	BytesPerStep float64 `json:"bytes_per_step"`
}

// Profile is the serializable cost measurement of one workflow run.
type Profile struct {
	Workflow string `json:"workflow,omitempty"`
	// Transport is the backend kind the measurements rode, so a profile
	// is self-describing about what its transfer times already include.
	Transport string            `json:"transport,omitempty"`
	Meta      map[string]string `json:"meta,omitempty"`
	Stages    map[string]*Stage `json:"stages"`
	Edges     map[string]*Edge  `json:"edges"`
}

// StageNames returns the profiled component names, sorted.
func (p *Profile) StageNames() []string {
	out := make([]string, 0, len(p.Stages))
	for n := range p.Stages {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EdgeBytes returns the measured per-step payload of a stream, or 0
// when the profile never saw it.
func (p *Profile) EdgeBytes(stream string) float64 {
	if e, ok := p.Edges[stream]; ok {
		return e.BytesPerStep
	}
	return 0
}

// FromSpans distills a span trace into a profile:
//
//   - kernel.transform spans (grouped by component) yield the summed
//     per-step kernel time and the measured rank count;
//   - stage.step spans yield the mean per-rank active wall per step and
//     the per-step input bytes;
//   - broker.step spans yield per-edge payload volume, falling back to
//     summed writer.publish spans for streams the broker never
//     completed (e.g. a capture sink).
//
// Failed spans (Err set) are excluded: a profile describes what steady
// progress costs, not what a crash cost.
func FromSpans(spans []obs.Span) *Profile {
	type stageAgg struct {
		kernelNs    float64
		kernelSteps map[int]bool
		stepNs      float64
		stepSamples int
		steps       map[int]bool
		bytesIn     int64
		bytesOut    int64
		maxRank     int
	}
	type edgeAgg struct {
		brokerBytes  int64
		brokerSteps  map[int]bool
		publishBytes int64
		publishSteps map[int]bool
	}
	stages := map[string]*stageAgg{}
	edges := map[string]*edgeAgg{}
	stage := func(name string) *stageAgg {
		a, ok := stages[name]
		if !ok {
			a = &stageAgg{kernelSteps: map[int]bool{}, steps: map[int]bool{}}
			stages[name] = a
		}
		return a
	}
	edge := func(stream string) *edgeAgg {
		a, ok := edges[stream]
		if !ok {
			a = &edgeAgg{brokerSteps: map[int]bool{}, publishSteps: map[int]bool{}}
			edges[stream] = a
		}
		return a
	}
	for _, sp := range spans {
		if sp.Err != "" {
			continue
		}
		dur := float64(sp.End - sp.Start)
		if dur < 0 {
			dur = 0
		}
		switch sp.Kind {
		case obs.KindKernelTransform:
			if sp.Note == "" {
				continue
			}
			a := stage(sp.Note)
			a.kernelNs += dur
			a.kernelSteps[sp.Step] = true
			if sp.Rank > a.maxRank {
				a.maxRank = sp.Rank
			}
		case obs.KindStageStep:
			if sp.Note == "" {
				continue
			}
			a := stage(sp.Note)
			a.stepNs += dur
			a.stepSamples++
			a.steps[sp.Step] = true
			a.bytesIn += sp.Bytes
			if sp.Rank > a.maxRank {
				a.maxRank = sp.Rank
			}
		case obs.KindBrokerStep:
			a := edge(sp.Stream)
			a.brokerBytes += sp.Bytes
			a.brokerSteps[sp.Step] = true
		case obs.KindWriterPublish:
			a := edge(sp.Stream)
			a.publishBytes += sp.Bytes
			a.publishSteps[sp.Step] = true
		}
	}
	p := &Profile{Stages: map[string]*Stage{}, Edges: map[string]*Edge{}}
	for name, a := range stages {
		steps := len(a.steps)
		if steps == 0 {
			steps = len(a.kernelSteps)
		}
		if steps == 0 {
			continue
		}
		st := &Stage{Component: name, Ranks: a.maxRank + 1, Steps: steps}
		if n := len(a.kernelSteps); n > 0 {
			st.KernelNsPerStep = a.kernelNs / float64(n)
		}
		if a.stepSamples > 0 {
			st.StepNsPerStep = a.stepNs / float64(a.stepSamples)
			st.BytesInPerStep = float64(a.bytesIn) / float64(len(a.steps))
		}
		p.Stages[name] = st
	}
	for stream, a := range edges {
		e := &Edge{Stream: stream}
		if n := len(a.brokerSteps); n > 0 {
			e.Steps = n
			e.BytesPerStep = float64(a.brokerBytes) / float64(n)
		} else if n := len(a.publishSteps); n > 0 {
			// writer.publish bytes include block metadata, a slight
			// overcount the model's tolerances absorb.
			e.Steps = n
			e.BytesPerStep = float64(a.publishBytes) / float64(n)
		} else {
			continue
		}
		p.Edges[stream] = e
	}
	return p
}

// ApplyRegistry fills stage byte rates the trace could not provide from
// a registry snapshot's comp.<name>.bytes_in/bytes_out counters. Spans
// win when present; the snapshot only backfills zeros.
func (p *Profile) ApplyRegistry(snap map[string]int64) {
	for name, st := range p.Stages {
		if st.Steps == 0 {
			continue
		}
		if st.BytesInPerStep == 0 {
			if v := snap["comp."+name+".bytes_in"]; v > 0 {
				st.BytesInPerStep = float64(v) / float64(st.Steps)
			}
		}
		if st.BytesOutPerStep == 0 {
			if v := snap["comp."+name+".bytes_out"]; v > 0 {
				st.BytesOutPerStep = float64(v) / float64(st.Steps)
			}
		}
	}
}

// SynthesizeStage builds a stage entry purely from a registry
// snapshot's comp.<name>.* instruments — the profile source for
// components with no stage.step span seam (reduce-style endpoints like
// histogram or stats record metrics but emit no kernel spans). Ranks
// must come from the caller: the registry does not know communicator
// sizes. Returns nil when the snapshot has no samples for the
// component. The synthesized stage has no KernelNsPerStep, so the
// planner treats it as not rank-rewritable — exactly right for reduce
// components.
func SynthesizeStage(name string, ranks int, snap map[string]int64) *Stage {
	samples := snap["comp."+name+".step_samples"]
	if samples <= 0 {
		return nil
	}
	if ranks <= 0 {
		ranks = 1
	}
	steps := int(samples) / ranks
	if steps <= 0 {
		steps = 1
	}
	st := &Stage{
		Component:     name,
		Ranks:         ranks,
		Steps:         steps,
		StepNsPerStep: float64(snap["comp."+name+".step_ns.mean"]),
	}
	if v := snap["comp."+name+".bytes_in"]; v > 0 {
		st.BytesInPerStep = float64(v) / float64(steps)
	}
	if v := snap["comp."+name+".bytes_out"]; v > 0 {
		st.BytesOutPerStep = float64(v) / float64(steps)
	}
	return st
}

// Save writes the profile as deterministic, human-diffable JSON.
func (p *Profile) Save(path string) error {
	blob, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// Load reads a profile written by Save (or by hand).
func Load(path string) (*Profile, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p := &Profile{}
	if err := json.Unmarshal(blob, p); err != nil {
		return nil, fmt.Errorf("cost: parsing profile %s: %w", path, err)
	}
	if p.Stages == nil {
		p.Stages = map[string]*Stage{}
	}
	if p.Edges == nil {
		p.Edges = map[string]*Edge{}
	}
	return p, nil
}

// LoadTrace reads a -trace JSONL file (one span per line, the
// obs.Tracer.WriteJSONL format) and distills it into a profile.
func LoadTrace(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var spans []obs.Span
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var sp obs.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			return nil, fmt.Errorf("cost: trace %s line %d: %w", path, line, err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromSpans(spans), nil
}
