package launch

import (
	"strings"
	"testing"

	"repro/internal/workflow"
)

func TestFormatRoundTrip(t *testing.T) {
	spec, err := Parse("orig", fig8)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Format(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse("again", text)
	if err != nil {
		t.Fatalf("formatted script does not re-parse: %v\n%s", err, text)
	}
	if len(again.Stages) != len(spec.Stages) {
		t.Fatalf("stage count changed: %d vs %d", len(again.Stages), len(spec.Stages))
	}
	for i := range spec.Stages {
		a, b := spec.Stages[i], again.Stages[i]
		if a.Component != b.Component || a.Procs != b.Procs || a.QueueDepth != b.QueueDepth {
			t.Fatalf("stage %d changed: %+v vs %+v", i, a, b)
		}
		if len(a.Args) != len(b.Args) {
			t.Fatalf("stage %d args changed: %v vs %v", i, a.Args, b.Args)
		}
		for j := range a.Args {
			if a.Args[j] != b.Args[j] {
				t.Fatalf("stage %d arg %d changed: %q vs %q", i, j, a.Args[j], b.Args[j])
			}
		}
	}
}

func TestFormatQuotesSpecialArgs(t *testing.T) {
	spec := workflow.Spec{
		Name: "q",
		Stages: []workflow.Stage{
			{Component: "select", Procs: 2, QueueDepth: 4,
				Args: []string{"my stream.fp", "atoms", "1", "out.fp", "sel", "v x"}},
		},
	}
	text, err := Format(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `"my stream.fp"`) || !strings.Contains(text, `"v x"`) {
		t.Fatalf("quoting missing:\n%s", text)
	}
	if !strings.Contains(text, "-q 4") {
		t.Fatalf("queue depth missing:\n%s", text)
	}
	again, err := Parse("again", text)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stages[0].Args[0] != "my stream.fp" || again.Stages[0].Args[5] != "v x" {
		t.Fatalf("round trip lost quoting: %q", again.Stages[0].Args)
	}
}

func TestFormatInstanceWithoutName(t *testing.T) {
	spec := workflow.Spec{
		Name:   "bad",
		Stages: []workflow.Stage{{Procs: 1}},
	}
	if _, err := Format(spec); err == nil {
		t.Fatal("unexpressible stage formatted")
	}
}
