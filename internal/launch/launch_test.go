package launch

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workflow"
)

// fig8 is the paper's Fig. 8 launch script, adapted to this repo's
// simulator arguments (no stdin deck).
const fig8 = `
# SmartBlock example launch script, LAMMPS workflow
aprun -n 64 histogram velos.fp velocities 16 &
aprun -n 256 magnitude lmpselect.fp lmpsel velos.fp velocities &
aprun -n 256 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &
aprun -n 1024 lammps dump.custom.fp atoms 100000 10 &
wait
`

func TestParseFig8(t *testing.T) {
	spec, err := Parse("fig8", fig8)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Stages) != 4 {
		t.Fatalf("got %d stages", len(spec.Stages))
	}
	st := spec.Stages[0]
	if st.Component != "histogram" || st.Procs != 64 || len(st.Args) != 3 {
		t.Fatalf("stage 0 = %+v", st)
	}
	sel := spec.Stages[2]
	if sel.Component != "select" || sel.Procs != 256 {
		t.Fatalf("stage 2 = %+v", sel)
	}
	if want := []string{"dump.custom.fp", "atoms", "1", "lmpselect.fp", "lmpsel", "vx", "vy", "vz"}; len(sel.Args) != len(want) {
		t.Fatalf("select args = %v", sel.Args)
	} else {
		for i := range want {
			if sel.Args[i] != want[i] {
				t.Fatalf("select args = %v", sel.Args)
			}
		}
	}
	if spec.Stages[3].Procs != 1024 {
		t.Fatalf("lammps procs = %d", spec.Stages[3].Procs)
	}
}

func TestParseQueueDepthFlag(t *testing.T) {
	spec, err := Parse("q", `aprun -n 4 -q 8 magnitude a.fp x b.fp y`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Stages[0].QueueDepth != 8 || spec.Stages[0].Procs != 4 {
		t.Fatalf("stage = %+v", spec.Stages[0])
	}
}

func TestParseDefaultsProcsToOne(t *testing.T) {
	spec, err := Parse("d", `aprun histogram a.fp x 4`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Stages[0].Procs != 1 {
		t.Fatalf("procs = %d", spec.Stages[0].Procs)
	}
}

func TestParseQuotedArgs(t *testing.T) {
	spec, err := Parse("quoted", `aprun -n 2 select "my stream.fp" atoms 1 out.fp sel 'v x'`)
	if err != nil {
		t.Fatal(err)
	}
	args := spec.Stages[0].Args
	if args[0] != "my stream.fp" || args[len(args)-1] != "v x" {
		t.Fatalf("args = %q", args)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            ``,
		"comments only":    "# nothing\n\n",
		"not aprun":        `mpirun -n 4 histogram a.fp x 4`,
		"bad procs":        `aprun -n zero histogram a.fp x 4`,
		"negative procs":   `aprun -n -4 histogram a.fp x 4`,
		"missing -n value": `aprun -n`,
		"unknown flag":     `aprun -Z 4 histogram a.fp x 4`,
		"no component":     `aprun -n 4`,
		"redirect":         `aprun -n 4 lammps < in.cracksm`,
		"pipe":             `aprun -n 4 lammps | tee log`,
		"after wait":       "aprun -n 1 histogram a.fp x 4\nwait\naprun -n 1 histogram b.fp x 4",
		"unterminated":     `aprun -n 1 histogram "a.fp x 4`,
		"bad queue":        `aprun -n 1 -q zero histogram a.fp x 4`,
		"bare transport":   "transport\naprun -n 1 histogram a.fp x 4",
		"transport extras": "transport tcp 1.2.3.4:7 extra\naprun -n 1 histogram a.fp x 4",
		"two transports":   "transport inproc\ntransport tcp 1.2.3.4:7\naprun -n 1 histogram a.fp x 4",
		"two fuses":        "fuse\nfuse\naprun -n 1 histogram a.fp x 4",
		"fuse extras":      "fuse hard\naprun -n 1 histogram a.fp x 4",
		"bare log":         "log\naprun -n 1 histogram a.fp x 4",
		"log extras":       "log /var/a /var/b\naprun -n 1 histogram a.fp x 4",
		"empty log dir":    "log \"\"\naprun -n 1 histogram a.fp x 4",
		"two logs":         "log /var/a\nlog /var/b\naprun -n 1 histogram a.fp x 4",
	}
	for name, script := range cases {
		if _, err := Parse(name, script); err == nil {
			t.Errorf("Parse(%s) succeeded", name)
		}
	}
}

func TestParseTransportDirective(t *testing.T) {
	spec, err := Parse("t", "transport uds /tmp/b.sock\naprun -n 1 histogram a.fp x 4\nwait\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Transport.Kind != "uds" || spec.Transport.Addr != "/tmp/b.sock" {
		t.Fatalf("transport = %+v", spec.Transport)
	}
	spec, err = Parse("t", "transport inproc\naprun -n 1 histogram a.fp x 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Transport.Kind != "inproc" || spec.Transport.Addr != "" {
		t.Fatalf("transport = %+v", spec.Transport)
	}
	// The directive's kind/addr validity is judged by the workflow
	// layer, where sbrun's flag overrides also land.
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	spec.Transport.Kind = "carrier-pigeon"
	if err := spec.Validate(); err == nil {
		t.Fatal("unknown transport kind validated")
	}
	spec.Transport = workflow.TransportSpec{Kind: "tcp"}
	if err := spec.Validate(); err == nil {
		t.Fatal("tcp without address validated")
	}
}

func TestParseEdgeTransportDirective(t *testing.T) {
	spec, err := Parse("t", strings.Join([]string{
		"transport auto /run/b.sock",
		"transport uds /run/b.sock stream=dump.fp",
		"transport tcp node1:7777 stream=velos.fp",
		"aprun -n 1 histogram a.fp x 4",
		"wait",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Transport.Kind != "auto" || spec.Transport.Addr != "/run/b.sock" {
		t.Fatalf("transport = %+v", spec.Transport)
	}
	want := map[string]workflow.TransportSpec{
		"dump.fp":  {Kind: "uds", Addr: "/run/b.sock"},
		"velos.fp": {Kind: "tcp", Addr: "node1:7777"},
	}
	if len(spec.EdgeTransports) != len(want) {
		t.Fatalf("edge transports = %+v", spec.EdgeTransports)
	}
	for stream, ts := range want {
		if spec.EdgeTransports[stream] != ts {
			t.Fatalf("stream %q = %+v, want %+v", stream, spec.EdgeTransports[stream], ts)
		}
	}
	// Per-stream directives don't count as the (single) global one.
	spec, err = Parse("t", "transport shm /run/b.sock stream=dump.fp\naprun -n 1 histogram a.fp x 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Transport.Kind != "" {
		t.Fatalf("global transport set by stream form: %+v", spec.Transport)
	}

	bad := map[string]string{
		"dup stream": "transport uds /run/b.sock stream=a.fp\ntransport tcp h:1 stream=a.fp\naprun -n 1 histogram a.fp x 4",
		"bare name":  "transport uds /run/b.sock stream=\naprun -n 1 histogram a.fp x 4",
		"extras":     "transport tcp h:1 extra stream=a.fp\naprun -n 1 histogram a.fp x 4",
	}
	for name, script := range bad {
		if _, err := Parse(name, script); err == nil {
			t.Errorf("Parse(%s) succeeded", name)
		}
	}
}

func TestFormatRendersEdgeTransports(t *testing.T) {
	spec, err := Parse("rt", strings.Join([]string{
		"transport auto /run/b.sock",
		"transport tcp node1:7777 stream=velos.fp",
		"transport uds \"/run/sb dir/b.sock\" \"stream=dump 1.fp\"",
		"aprun -n 1 histogram a.fp x 4 &",
		"wait",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	text, err := Format(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse("rt2", text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if len(again.EdgeTransports) != 2 ||
		again.EdgeTransports["velos.fp"] != spec.EdgeTransports["velos.fp"] ||
		again.EdgeTransports["dump 1.fp"] != spec.EdgeTransports["dump 1.fp"] {
		t.Fatalf("round trip lost edge transports:\n%s\n%+v", text, again.EdgeTransports)
	}
}

func TestParseLogDirective(t *testing.T) {
	spec, err := Parse("lg", "log /var/run/sb-log\naprun -n 1 histogram a.fp x 4\nwait\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.LogDir != "/var/run/sb-log" {
		t.Fatalf("log dir = %q", spec.LogDir)
	}
	spec, err = Parse("lg", "aprun -n 1 histogram a.fp x 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.LogDir != "" {
		t.Fatalf("log dir set without directive: %q", spec.LogDir)
	}
	// Directories with spaces ride in quotes, like any other argument.
	spec, err = Parse("lg", "log \"/mnt/scratch/my logs\"\naprun -n 1 histogram a.fp x 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.LogDir != "/mnt/scratch/my logs" {
		t.Fatalf("quoted log dir = %q", spec.LogDir)
	}
}

func TestParseReplayDirective(t *testing.T) {
	spec, err := Parse("rp", "replay /mnt/scratch/rec\naprun -n 1 histogram a.fp x 4\nwait\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.ReplayDir != "/mnt/scratch/rec" {
		t.Fatalf("replay dir = %q", spec.ReplayDir)
	}
	spec, err = Parse("rp", "aprun -n 1 histogram a.fp x 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.ReplayDir != "" {
		t.Fatalf("replay dir set without directive: %q", spec.ReplayDir)
	}
	spec, err = Parse("rp", "replay \"/mnt/scratch/old runs\"\naprun -n 1 histogram a.fp x 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.ReplayDir != "/mnt/scratch/old runs" {
		t.Fatalf("quoted replay dir = %q", spec.ReplayDir)
	}
	if _, err := Parse("rp", "replay\naprun -n 1 histogram a.fp x 4\n"); err == nil {
		t.Fatal("bare replay directive accepted")
	}
}

func TestParseFuseDirective(t *testing.T) {
	spec, err := Parse("f", "fuse\naprun -n 1 histogram a.fp x 4\nwait\n")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Fuse {
		t.Fatal("fuse directive not recorded")
	}
	spec, err = Parse("f", "aprun -n 1 histogram a.fp x 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Fuse {
		t.Fatal("fuse set without directive")
	}
}

func TestParseDuplicateDirectivesReportLine(t *testing.T) {
	cases := map[string]struct {
		script string
		line   int
	}{
		"transport": {"transport inproc\ntransport inproc\naprun -n 1 histogram a.fp x 4", 2},
		"fuse":      {"fuse\n# comment\nfuse\naprun -n 1 histogram a.fp x 4", 3},
		"log":       {"log /var/a\n\nlog /var/b\naprun -n 1 histogram a.fp x 4", 3},
		"replay":    {"replay /var/a\nreplay /var/b\naprun -n 1 histogram a.fp x 4", 2},
	}
	for name, tc := range cases {
		_, err := Parse(name, tc.script)
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: err = %v", name, err)
		}
		if pe.Line != tc.line || !strings.Contains(pe.Msg, "duplicate") {
			t.Fatalf("%s: parse error = %+v", name, pe)
		}
	}
}

func TestFormatRendersDirectives(t *testing.T) {
	spec, err := Parse("rt", "transport uds /tmp/b.sock\nlog \"/mnt/scratch/sb logs\"\nreplay \"/mnt/scratch/rec\"\nfuse\naprun -n 2 -q 4 magnitude a.fp x b.fp y &\nwait\n")
	if err != nil {
		t.Fatal(err)
	}
	text, err := Format(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "transport uds /tmp/b.sock\n") || !strings.Contains(text, "fuse\n") {
		t.Fatalf("formatted script missing directives:\n%s", text)
	}
	if !strings.Contains(text, "log \"/mnt/scratch/sb logs\"\n") {
		t.Fatalf("formatted script missing log directive:\n%s", text)
	}
	again, err := Parse("rt2", text)
	if err != nil {
		t.Fatal(err)
	}
	if again.Transport != spec.Transport || again.Fuse != spec.Fuse {
		t.Fatalf("round trip lost directives: %+v fuse=%v", again.Transport, again.Fuse)
	}
	if again.LogDir != spec.LogDir {
		t.Fatalf("round trip lost log dir: %q vs %q", again.LogDir, spec.LogDir)
	}
	if again.ReplayDir != spec.ReplayDir || again.ReplayDir != "/mnt/scratch/rec" {
		t.Fatalf("round trip lost replay dir: %q vs %q", again.ReplayDir, spec.ReplayDir)
	}
	if again.Stages[0].QueueDepth != 4 {
		t.Fatalf("round trip lost queue depth: %+v", again.Stages[0])
	}
}

func TestParseErrorReportsLine(t *testing.T) {
	_, err := Parse("l", "aprun -n 1 histogram a.fp x 4\nmpirun oops\n")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if pe.Line != 2 || !strings.Contains(pe.Error(), "line 2") {
		t.Fatalf("parse error = %+v", pe)
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.sh")
	if err := os.WriteFile(path, []byte(fig8), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != path || len(spec.Stages) != 4 {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.sh")); err == nil {
		t.Fatal("missing file parsed")
	}
}

func TestTokenize(t *testing.T) {
	toks, err := tokenize(`a "b c" d'e f'g  h`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b c", "de fg", "h"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %q", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %q, want %q", toks, want)
		}
	}
}

// Fields is the exported tokenizer sbreplay splits -args/-alt override
// strings with: identical quoting rules to aprun lines.
func TestFields(t *testing.T) {
	got, err := Fields(`velos.fp velocities "8 bins" 'x y'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"velos.fp", "velocities", "8 bins", "x y"}
	if len(got) != len(want) {
		t.Fatalf("Fields = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Fields[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := Fields(`unterminated "quote`); err == nil {
		t.Fatal("unterminated quote accepted")
	}
}
