// Package launch parses SmartBlock job scripts — the aprun-style launch
// files with which "the user is able to specify an entire workflow as a
// series of applications launched together in a single job script"
// (§III-B, Fig. 8) — into workflow specs. Example:
//
//	# LAMMPS workflow (Fig. 8 of the paper)
//	aprun -n 64  histogram velos.fp velocities 16 &
//	aprun -n 256 magnitude lmpselect.fp lmpsel velos.fp velocities &
//	aprun -n 256 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &
//	aprun -n 1024 lammps dump.custom.fp atoms 100000 10 &
//	wait
//
// Supported syntax: `aprun -n <procs> [-q <queue-depth>] <component>
// <args…> [&]`, blank lines, `#` comments, a trailing `wait`, an
// optional `transport <kind> [addr]` directive selecting the stream
// fabric the workflow runs over (inproc, tcp host:port, uds or shm
// /path/to.sock, or auto to resolve from the address shape), repeatable
// `transport <kind> [addr] stream=<name>` directives routing individual
// streams over a different backend than the workflow default (at most
// one per stream), an optional `log <dir>` directive mounting a durable
// stream log on the workflow's broker (crash recovery and catch-up
// replay; see flexpath.Broker.AttachLog), an optional `replay <dir>`
// directive naming the recorded log directory sbreplay re-runs the
// workflow's components against offline, and an optional `fuse`
// directive asking the runner to apply the stage-fusion pass (see
// workflow.Plan.Fuse) before launching. Apart from the per-stream
// transport form, each directive may appear at most once. Components are
// resolved by name at run time against the registry in package
// components.
package launch

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/workflow"
)

// ParseError reports a malformed script line with its 1-based number.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("launch script line %d: %s (%q)", e.Line, e.Msg, e.Text)
}

// Parse converts a job script into a workflow spec named name.
func Parse(name string, script string) (workflow.Spec, error) {
	spec := workflow.Spec{Name: name}
	sawWait := false
	for lineNo, raw := range strings.Split(script, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if line == "wait" {
			sawWait = true
			continue
		}
		if sawWait {
			return workflow.Spec{}, &ParseError{Line: lineNo + 1, Text: raw,
				Msg: "command after wait"}
		}
		if strings.HasPrefix(line, "transport") {
			ts, stream, err := parseTransport(lineNo+1, raw, line)
			if err != nil {
				return workflow.Spec{}, err
			}
			if stream != "" {
				// Per-stream form: repeatable, once per stream.
				if _, dup := spec.EdgeTransports[stream]; dup {
					return workflow.Spec{}, &ParseError{Line: lineNo + 1, Text: raw,
						Msg: fmt.Sprintf("duplicate transport directive for stream %q", stream)}
				}
				if spec.EdgeTransports == nil {
					spec.EdgeTransports = map[string]workflow.TransportSpec{}
				}
				spec.EdgeTransports[stream] = ts
				continue
			}
			if spec.Transport.Kind != "" {
				return workflow.Spec{}, &ParseError{Line: lineNo + 1, Text: raw,
					Msg: "duplicate transport directive"}
			}
			spec.Transport = ts
			continue
		}
		if line == "log" || strings.HasPrefix(line, "log ") || strings.HasPrefix(line, "log\t") {
			tokens, err := tokenize(line)
			if err != nil || len(tokens) != 2 || tokens[1] == "" {
				return workflow.Spec{}, &ParseError{Line: lineNo + 1, Text: raw,
					Msg: "log directive wants: log <dir>"}
			}
			if spec.LogDir != "" {
				return workflow.Spec{}, &ParseError{Line: lineNo + 1, Text: raw,
					Msg: "duplicate log directive"}
			}
			spec.LogDir = tokens[1]
			continue
		}
		if line == "replay" || strings.HasPrefix(line, "replay ") || strings.HasPrefix(line, "replay\t") {
			tokens, err := tokenize(line)
			if err != nil || len(tokens) != 2 || tokens[1] == "" {
				return workflow.Spec{}, &ParseError{Line: lineNo + 1, Text: raw,
					Msg: "replay directive wants: replay <dir>"}
			}
			if spec.ReplayDir != "" {
				return workflow.Spec{}, &ParseError{Line: lineNo + 1, Text: raw,
					Msg: "duplicate replay directive"}
			}
			spec.ReplayDir = tokens[1]
			continue
		}
		if line == "fuse" || strings.HasPrefix(line, "fuse ") || strings.HasPrefix(line, "fuse\t") {
			tokens, err := tokenize(line)
			if err != nil || len(tokens) != 1 {
				return workflow.Spec{}, &ParseError{Line: lineNo + 1, Text: raw,
					Msg: "fuse directive takes no arguments"}
			}
			if spec.Fuse {
				return workflow.Spec{}, &ParseError{Line: lineNo + 1, Text: raw,
					Msg: "duplicate fuse directive"}
			}
			spec.Fuse = true
			continue
		}
		stage, err := parseLine(lineNo+1, raw, line)
		if err != nil {
			return workflow.Spec{}, err
		}
		spec.Stages = append(spec.Stages, stage)
	}
	if len(spec.Stages) == 0 {
		return workflow.Spec{}, fmt.Errorf("launch script %q contains no aprun lines", name)
	}
	return spec, nil
}

// ParseFile reads and parses a job script file; the spec is named after
// the path.
func ParseFile(path string) (workflow.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return workflow.Spec{}, err
	}
	return Parse(path, string(data))
}

// parseTransport handles the `transport <kind> [addr]
// [stream=<name>]` directive, returning the stream name ("" for the
// workflow-wide form). Kind and address validity are checked by
// workflow.TransportSpec.Validate, so the runner and the linter report
// the same diagnostics; here only the shape of the line matters.
func parseTransport(lineNo int, raw, line string) (workflow.TransportSpec, string, error) {
	fail := func(msg string) (workflow.TransportSpec, string, error) {
		return workflow.TransportSpec{}, "", &ParseError{Line: lineNo, Text: raw, Msg: msg}
	}
	tokens, err := tokenize(line)
	if err != nil {
		return fail(err.Error())
	}
	stream := ""
	if n := len(tokens); n > 1 && strings.HasPrefix(tokens[n-1], "stream=") {
		stream = strings.TrimPrefix(tokens[n-1], "stream=")
		if stream == "" {
			return fail("stream= selector wants a stream name")
		}
		tokens = tokens[:n-1]
	}
	switch len(tokens) {
	case 2:
		return workflow.TransportSpec{Kind: tokens[1]}, stream, nil
	case 3:
		return workflow.TransportSpec{Kind: tokens[1], Addr: tokens[2]}, stream, nil
	default:
		return fail("transport directive wants: transport <inproc|tcp|uds|shm|auto> [addr] [stream=<name>]")
	}
}

func parseLine(lineNo int, raw, line string) (workflow.Stage, error) {
	fail := func(msg string) (workflow.Stage, error) {
		return workflow.Stage{}, &ParseError{Line: lineNo, Text: raw, Msg: msg}
	}
	line = strings.TrimSuffix(strings.TrimSpace(line), "&")
	tokens, err := tokenize(line)
	if err != nil {
		return fail(err.Error())
	}
	if len(tokens) == 0 || tokens[0] != "aprun" {
		return fail("expected a line starting with aprun")
	}
	tokens = tokens[1:]
	stage := workflow.Stage{Procs: 1}
	for len(tokens) > 0 && strings.HasPrefix(tokens[0], "-") {
		switch tokens[0] {
		case "-n":
			if len(tokens) < 2 {
				return fail("-n requires a process count")
			}
			n, err := strconv.Atoi(tokens[1])
			if err != nil || n <= 0 {
				return fail(fmt.Sprintf("process count %q is not a positive integer", tokens[1]))
			}
			stage.Procs = n
			tokens = tokens[2:]
		case "-q":
			if len(tokens) < 2 {
				return fail("-q requires a queue depth")
			}
			q, err := strconv.Atoi(tokens[1])
			if err != nil || q <= 0 {
				return fail(fmt.Sprintf("queue depth %q is not a positive integer", tokens[1]))
			}
			stage.QueueDepth = q
			tokens = tokens[2:]
		default:
			return fail(fmt.Sprintf("unknown aprun flag %q", tokens[0]))
		}
	}
	if len(tokens) == 0 {
		return fail("missing component name")
	}
	for _, t := range tokens {
		if t == "<" || t == ">" || t == "|" {
			return fail(fmt.Sprintf("shell redirection %q is not supported; pass parameters as arguments", t))
		}
	}
	if !validComponentName(tokens[0]) {
		return fail(fmt.Sprintf("invalid component name %q", tokens[0]))
	}
	stage.Component = tokens[0]
	stage.Args = tokens[1:]
	return stage, nil
}

// validComponentName accepts the registry's naming alphabet: letters,
// digits, dot, underscore and dash. Anything else (whitespace, quotes,
// control characters) is a script error, not a component.
func validComponentName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Fields splits one script line on whitespace with the same quoting
// rules the parser applies to aprun lines — the tokenizer sbreplay uses
// for -args/-alt strings, exported so an override written like a script
// line splits exactly like a script line.
func Fields(line string) ([]string, error) { return tokenize(line) }

// tokenize splits a line on whitespace, honoring single and double
// quotes so stream names and header entries may contain spaces.
func tokenize(line string) ([]string, error) {
	var tokens []string
	var cur strings.Builder
	inTok := false
	quote := byte(0)
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else {
				cur.WriteByte(c)
			}
		case c == '\'' || c == '"':
			quote = c
			inTok = true
		case c == ' ' || c == '\t':
			if inTok {
				tokens = append(tokens, cur.String())
				cur.Reset()
				inTok = false
			}
		default:
			cur.WriteByte(c)
			inTok = true
		}
	}
	if quote != 0 {
		return nil, fmt.Errorf("unterminated quote")
	}
	if inTok {
		tokens = append(tokens, cur.String())
	}
	return tokens, nil
}
