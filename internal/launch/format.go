package launch

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/workflow"
)

// Format renders a workflow spec back into the aprun job-script syntax
// Parse accepts, completing the round trip: a spec assembled
// programmatically can be saved as a script, shared, and re-launched
// with sbrun. Stages with an Instance but no Component name cannot be
// expressed in a script and produce an error.
func Format(spec workflow.Spec) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# workflow %s\n", spec.Name)
	if spec.Transport.Kind != "" {
		sb.WriteString("transport ")
		sb.WriteString(quoteArg(spec.Transport.Kind))
		if spec.Transport.Addr != "" {
			sb.WriteByte(' ')
			sb.WriteString(quoteArg(spec.Transport.Addr))
		}
		sb.WriteByte('\n')
	}
	streams := make([]string, 0, len(spec.EdgeTransports))
	for stream := range spec.EdgeTransports {
		streams = append(streams, stream)
	}
	sort.Strings(streams) // deterministic rendering
	for _, stream := range streams {
		ts := spec.EdgeTransports[stream]
		sb.WriteString("transport ")
		sb.WriteString(quoteArg(ts.Kind))
		if ts.Addr != "" {
			sb.WriteByte(' ')
			sb.WriteString(quoteArg(ts.Addr))
		}
		// The stream selector must survive tokenizing as one token, so
		// the whole selector is quoted when the name needs it.
		sb.WriteByte(' ')
		sb.WriteString(quoteArg("stream=" + stream))
		sb.WriteByte('\n')
	}
	if spec.LogDir != "" {
		sb.WriteString("log ")
		sb.WriteString(quoteArg(spec.LogDir))
		sb.WriteByte('\n')
	}
	if spec.ReplayDir != "" {
		sb.WriteString("replay ")
		sb.WriteString(quoteArg(spec.ReplayDir))
		sb.WriteByte('\n')
	}
	if spec.Fuse {
		sb.WriteString("fuse\n")
	}
	for i, st := range spec.Stages {
		name := st.Component
		if name == "" {
			if st.Instance == nil {
				return "", fmt.Errorf("launch: stage %d has neither component name nor instance", i)
			}
			name = st.Instance.Name()
		}
		sb.WriteString("aprun -n ")
		fmt.Fprintf(&sb, "%d", st.Procs)
		if st.QueueDepth > 0 {
			fmt.Fprintf(&sb, " -q %d", st.QueueDepth)
		}
		sb.WriteByte(' ')
		sb.WriteString(name)
		for _, arg := range st.Args {
			sb.WriteByte(' ')
			sb.WriteString(quoteArg(arg))
		}
		sb.WriteString(" &\n")
	}
	sb.WriteString("wait\n")
	return sb.String(), nil
}

// quoteArg renders an argument so the tokenizer reconstructs it exactly.
// The tokenizer has no escape characters but concatenates adjacent
// quoted segments ("a"'b' tokenizes as "ab"), so arguments containing
// both quote characters are emitted as alternating segments: every `"`
// rides in a single-quoted segment, everything else in double-quoted
// ones.
func quoteArg(arg string) string {
	if arg != "" && !strings.ContainsAny(arg, " \t#&\"'") {
		return arg
	}
	if arg == "" {
		return `""`
	}
	var sb strings.Builder
	i := 0
	for i < len(arg) {
		if arg[i] == '"' {
			j := i
			for j < len(arg) && arg[j] == '"' {
				j++
			}
			sb.WriteByte('\'')
			sb.WriteString(arg[i:j])
			sb.WriteByte('\'')
			i = j
			continue
		}
		j := i
		for j < len(arg) && arg[j] != '"' {
			j++
		}
		sb.WriteByte('"')
		sb.WriteString(arg[i:j])
		sb.WriteByte('"')
		i = j
	}
	return sb.String()
}
