package launch

import (
	"testing"
)

// FuzzParse feeds arbitrary scripts to the parser: it must either return
// an error or a spec that Format can render and Parse can re-read to the
// same stages — never panic, never silently drop a stage.
func FuzzParse(f *testing.F) {
	f.Add(fig8)
	f.Add("aprun -n 1 histogram a.fp x 4")
	f.Add("aprun histogram 'a b.fp' x 4 &\nwait")
	f.Add("# only a comment")
	f.Add("aprun -q 3 -n 2 magnitude a.fp x b.fp y &")
	f.Add("transport uds /tmp/b.sock\nfuse\naprun -n 1 histogram a.fp x 4 &\nwait")
	f.Add("transport inproc\ntransport tcp 1.2.3.4:7\naprun -n 1 histogram a.fp x 4")
	f.Add("fuse\nfuse\naprun -n 1 histogram a.fp x 4")
	f.Add("fuse extra\naprun -n 1 histogram a.fp x 4")
	f.Fuzz(func(t *testing.T, script string) {
		spec, err := Parse("fuzz", script)
		if err != nil {
			return
		}
		text, err := Format(spec)
		if err != nil {
			// Parsed specs always have component names, so Format must work.
			t.Fatalf("Format of parsed spec failed: %v", err)
		}
		again, err := Parse("fuzz2", text)
		if err != nil {
			t.Fatalf("round trip failed: %v\nscript: %q\nformatted: %q", err, script, text)
		}
		if len(again.Stages) != len(spec.Stages) {
			t.Fatalf("round trip changed stage count: %d vs %d", len(again.Stages), len(spec.Stages))
		}
		if again.Transport != spec.Transport {
			t.Fatalf("round trip changed transport: %+v vs %+v", again.Transport, spec.Transport)
		}
		if again.Fuse != spec.Fuse {
			t.Fatalf("round trip changed fuse: %v vs %v", again.Fuse, spec.Fuse)
		}
		for i := range spec.Stages {
			a, b := spec.Stages[i], again.Stages[i]
			if a.Component != b.Component || a.Procs != b.Procs || a.QueueDepth != b.QueueDepth || len(a.Args) != len(b.Args) {
				t.Fatalf("round trip changed stage %d: %+v vs %+v", i, a, b)
			}
		}
	})
}

// FuzzTokenize checks the tokenizer never panics and respects quoting.
func FuzzTokenize(f *testing.F) {
	f.Add(`a "b c" d`)
	f.Add(`''`)
	f.Add("a\tb")
	f.Fuzz(func(t *testing.T, line string) {
		toks, err := tokenize(line)
		if err != nil {
			return
		}
		for _, tok := range toks {
			_ = tok
		}
	})
}
