package streamlog

import (
	"bytes"
	"fmt"
	"testing"
)

// fillSealed appends steps 0..n-1 of paySize-byte payloads with a
// segment budget small enough that every step but the last few lands in
// a sealed segment.
func fillSealed(t testing.TB, dir string, n, paySize int) *Log {
	t.Helper()
	l, err := OpenLog(dir, Options{SegmentBytes: int64(paySize + 64)})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < n; s++ {
		pay := bytes.Repeat([]byte{byte(s)}, paySize)
		if err := l.Append(s, [][]byte{fmt.Appendf(nil, "m%d", s)}, [][]byte{pay}); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestReadStepViewSealed(t *testing.T) {
	if !mmapSupported() {
		t.Skip("no mmap on this platform")
	}
	l := fillSealed(t, t.TempDir(), 8, 1024)
	defer l.Close()
	if l.Segments() < 3 {
		t.Fatalf("expected multiple segments, got %d", l.Segments())
	}
	// A sealed step must serve as a view and match the copying read.
	wantM, wantP, err := l.ReadStep(1)
	if err != nil {
		t.Fatal(err)
	}
	metas, payloads, release, err := l.ReadStepView(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(metas[0], wantM[0]) || !bytes.Equal(payloads[0], wantP[0]) {
		t.Fatal("view differs from copying read")
	}
	l.mu.Lock()
	seg := l.index[1].seg
	if seg.mem == nil || seg.refs != 1 {
		t.Fatalf("sealed step not served from a mapping (mem=%v refs=%d)", seg.mem != nil, seg.refs)
	}
	l.mu.Unlock()
	release()
	l.mu.Lock()
	if seg.refs != 0 {
		t.Fatalf("refs = %d after release", seg.refs)
	}
	l.mu.Unlock()
}

func TestReadStepViewActiveCopies(t *testing.T) {
	l := fillSealed(t, t.TempDir(), 8, 1024)
	defer l.Close()
	// The last step lives in the active segment: the view must fall back
	// to a copy (no mapping of a file still being appended to).
	_, payloads, release, err := l.ReadStepView(7)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if payloads[0][0] != 7 {
		t.Fatalf("payload = %x", payloads[0][:4])
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seg := l.index[7].seg; seg.mem != nil {
		t.Fatal("active segment was mapped")
	}
}

func TestReadStepViewNoMmapOption(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{SegmentBytes: 1024 + 64, NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if err := l.Append(s, [][]byte{nil}, [][]byte{bytes.Repeat([]byte{byte(s)}, 1024)}); err != nil {
			t.Fatal(err)
		}
	}
	_, payloads, release, err := l.ReadStepView(0)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if payloads[0][0] != 0 || len(payloads[0]) != 1024 {
		t.Fatal("pread fallback returned wrong payload")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, seg := range l.segs {
		if seg.mem != nil {
			t.Fatal("NoMmap log mapped a segment")
		}
	}
}

// TestReadStepViewSurvivesEviction pins the deferred-munmap contract: a
// held view stays readable after retention evicts (and unlinks) its
// segment, and the mapping is returned on the final release.
func TestReadStepViewSurvivesEviction(t *testing.T) {
	if !mmapSupported() {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{SegmentBytes: 1024 + 64, RetainSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	append1 := func(s int) {
		t.Helper()
		if err := l.Append(s, [][]byte{nil}, [][]byte{bytes.Repeat([]byte{byte(s)}, 1024)}); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 3; s++ {
		append1(s)
	}
	_, payloads, release, err := l.ReadStepView(0)
	if err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	seg := l.index[0].seg
	l.mu.Unlock()
	// Retire far ahead and keep appending until retention drops step 0's
	// segment out from under the held view.
	if err := l.AppendRetire(10); err != nil {
		t.Fatal(err)
	}
	for s := 3; s < 8; s++ {
		append1(s)
	}
	if _, _, err := l.ReadStep(0); err == nil {
		t.Fatal("step 0 still readable; eviction did not happen")
	}
	if payloads[0][0] != 0 || payloads[0][1023] != 0 {
		t.Fatal("held view corrupted by eviction")
	}
	l.mu.Lock()
	if seg.mem == nil || !seg.pendingUnmap {
		t.Fatalf("evicted segment not deferred (mem=%v pending=%v)", seg.mem != nil, seg.pendingUnmap)
	}
	l.mu.Unlock()
	release()
	l.mu.Lock()
	defer l.mu.Unlock()
	if seg.mem != nil {
		t.Fatal("mapping survived the final release")
	}
}

// benchReplay measures a full replay pass over sealed segments; the
// mmap path should move no payload bytes through the heap, the pread
// path allocates every record. Compare:
//
//	go test ./internal/streamlog -bench BenchmarkLogReplay -benchmem
func benchReplay(b *testing.B, view bool) {
	const steps, paySize = 64, 64 << 10
	dir := b.TempDir()
	opts := Options{SegmentBytes: 4 * int64(paySize), NoMmap: !view}
	l, err := OpenLog(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		b.Fatal(err)
	}
	pay := bytes.Repeat([]byte{0xab}, paySize)
	for s := 0; s < steps; s++ {
		if err := l.Append(s, [][]byte{nil}, [][]byte{pay}); err != nil {
			b.Fatal(err)
		}
	}
	// One extra roll so every benchmarked step is sealed.
	if err := l.AppendEnd(steps - 1); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(steps) * int64(paySize))
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		for s := 0; s < steps; s++ {
			_, payloads, release, err := l.ReadStepView(s)
			if err != nil {
				b.Fatal(err)
			}
			sink ^= payloads[0][0]
			release()
		}
	}
	_ = sink
}

func BenchmarkLogReplayMmap(b *testing.B) {
	if !mmapSupported() {
		b.Skip("no mmap on this platform")
	}
	benchReplay(b, true)
}

func BenchmarkLogReplayPread(b *testing.B) { benchReplay(b, false) }
