package streamlog

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// record writes a small ended log: cfgRanks writer ranks, steps 0..n-1.
func record(t *testing.T, dir string, ranks, steps int) {
	t.Helper()
	l := mustLog(t, dir, Options{})
	if err := l.SetConfig(Config{WriterSize: ranks, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		appendStep(t, l, s, ranks)
	}
	if err := l.AppendEnd(steps - 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIterWalksEndedLog(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, 2, 5)
	l := mustLog(t, dir, Options{ReadOnly: true})
	it := l.Iter()
	for want := 0; want < 5; want++ {
		step, metas, payloads, release, err := it.Next()
		if err != nil {
			t.Fatalf("step %d: %v", want, err)
		}
		if step != want || len(metas) != 2 || len(payloads) != 2 {
			t.Fatalf("got step %d with %d/%d blobs, want %d with 2/2", step, len(metas), len(payloads), want)
		}
		checkStep(t, l, step, 2)
		release()
	}
	if _, _, _, _, err := it.Next(); err != io.EOF {
		t.Fatalf("past head: got %v, want io.EOF", err)
	}
	if views := l.OpenViews(); views != 0 {
		t.Fatalf("leaked %d views after full iteration", views)
	}
}

func TestIterTruncatedLog(t *testing.T) {
	dir := t.TempDir()
	l := mustLog(t, dir, Options{})
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	appendStep(t, l, 0, 1)
	appendStep(t, l, 1, 1)
	l.Close() // no end record: the recording just stops

	ro := mustLog(t, dir, Options{ReadOnly: true})
	it := ro.Iter()
	for want := 0; want < 2; want++ {
		step, _, _, release, err := it.Next()
		if err != nil || step != want {
			t.Fatalf("step %d: got %d, %v", want, step, err)
		}
		release()
	}
	if _, _, _, _, err := it.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated head: got %v, want ErrTruncated", err)
	}
}

func TestIterFromBelowHorizon(t *testing.T) {
	dir := t.TempDir()
	l := mustLog(t, dir, Options{SegmentBytes: 256, RetainSteps: 2})
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		appendStep(t, l, s, 1)
		if err := l.AppendRetire(s); err != nil {
			t.Fatal(err)
		}
	}
	if l.FirstStep() == 0 {
		t.Fatal("retention evicted nothing; test needs a horizon")
	}
	if _, _, _, _, err := l.IterFrom(0).Next(); !errors.Is(err, ErrEvicted) {
		t.Fatalf("below horizon: got %v, want ErrEvicted", err)
	}
	// Iter starts at the horizon and serves everything still readable.
	it := l.Iter()
	first, _, _, release, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	release()
	if first != l.FirstStep() {
		t.Fatalf("Iter started at %d, want horizon %d", first, l.FirstStep())
	}
}

func TestReadOnlyRejectsMutation(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, 1, 2)
	l := mustLog(t, dir, Options{ReadOnly: true})
	if err := l.Append(2, [][]byte{{1}}, [][]byte{{2}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Append: got %v, want ErrReadOnly", err)
	}
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("SetConfig: got %v, want ErrReadOnly", err)
	}
	if err := l.AppendRetire(0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("AppendRetire: got %v, want ErrReadOnly", err)
	}
	if err := l.AppendEnd(1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("AppendEnd: got %v, want ErrReadOnly", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Sync: got %v, want ErrReadOnly", err)
	}
}

// TestReadOnlyLeavesTornTailOnDisk is the contract that distinguishes a
// replay open from a recovery open: the recorded directory must come
// back byte-for-byte untouched, torn tail included, while the read-only
// view still serves exactly the valid prefix.
func TestReadOnlyLeavesTornTailOnDisk(t *testing.T) {
	dir := t.TempDir()
	l := mustLog(t, dir, Options{})
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	appendStep(t, l, 0, 1)
	appendStep(t, l, 1, 1)
	l.Close()

	segPath := filepath.Join(dir, "00000000.seg")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), data...), 0xde, 0xad, 0xbe) // partial record
	if err := os.WriteFile(segPath, torn, 0o666); err != nil {
		t.Fatal(err)
	}

	ro := mustLog(t, dir, Options{ReadOnly: true})
	if got := ro.NextStep(); got != 2 {
		t.Fatalf("read-only scan indexed %d steps, want 2", got)
	}
	checkStep(t, ro, 0, 1)
	checkStep(t, ro, 1, 1)
	ro.Close()

	after, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(torn) {
		t.Fatalf("read-only open mutated the segment: %d bytes, was %d", len(after), len(torn))
	}
}

func TestReadOnlyOpenMissingDir(t *testing.T) {
	if _, err := OpenLog(filepath.Join(t.TempDir(), "nope"), Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open of a missing directory succeeded (and created it)")
	}
}

// TestViewReleaseIdempotent is the regression test for the release-
// closure leak: a replay that aborts mid-step unwinds through both its
// own cleanup and deferred ones, so release must tolerate double calls
// and the view count must return to zero on every path.
func TestViewReleaseIdempotent(t *testing.T) {
	if !mmapSupported() {
		t.Skip("platform lacks shared file mappings")
	}
	dir := t.TempDir()
	record(t, dir, 1, 3)
	l := mustLog(t, dir, Options{ReadOnly: true})
	_, _, release, err := func() ([][]byte, [][]byte, func(), error) {
		return l.ReadStepView(1)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if got := l.OpenViews(); got != 1 {
		t.Fatalf("OpenViews = %d with one view out, want 1", got)
	}
	release()
	release() // the abort path's second release must be a no-op
	if got := l.OpenViews(); got != 0 {
		t.Fatalf("OpenViews = %d after (double) release, want 0", got)
	}
	// A second view must still work: a broken double-decrement would
	// have corrupted the segment's refcount.
	_, _, rel2, err := l.ReadStepView(2)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if got := l.OpenViews(); got != 0 {
		t.Fatalf("OpenViews = %d after second view released, want 0", got)
	}
}

// TestViewSurvivesEvictionUntilRelease pins the deferred-munmap path:
// the view count stays honest when the segment holding the view is
// evicted before the release fires.
func TestViewSurvivesEvictionUntilRelease(t *testing.T) {
	if !mmapSupported() {
		t.Skip("platform lacks shared file mappings")
	}
	dir := t.TempDir()
	l := mustLog(t, dir, Options{SegmentBytes: 256, RetainSteps: 2})
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	appendStep(t, l, 0, 1)
	appendStep(t, l, 1, 1)
	metas, _, release, err := l.ReadStepView(0)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), metas[0]...)
	for s := 2; s < 8; s++ {
		appendStep(t, l, s, 1)
		if err := l.AppendRetire(s - 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := l.ReadStep(0); !errors.Is(err, ErrEvicted) {
		t.Fatal("step 0 still readable; eviction did not happen")
	}
	if got := l.OpenViews(); got != 1 {
		t.Fatalf("OpenViews = %d with an evicted-segment view out, want 1", got)
	}
	if string(metas[0]) != string(want) {
		t.Fatal("view bytes changed under eviction")
	}
	release()
	if got := l.OpenViews(); got != 0 {
		t.Fatalf("OpenViews = %d after releasing evicted view, want 0", got)
	}
}
