//go:build !unix

package streamlog

import (
	"errors"
	"os"
)

func mmapSupported() bool { return false }

func mmapReadOnly(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("streamlog: no mmap on this platform")
}

func munmap(b []byte) error { return nil }
