//go:build unix

package streamlog

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy read path for sealed segments;
// platforms without shared file mappings fall back to pread copies.
func mmapSupported() bool { return true }

// mmapReadOnly maps size bytes of f read-only and shared. The mapping
// outlives the file descriptor, so a mapped segment can be closed and
// even unlinked (eviction) while views remain valid.
func mmapReadOnly(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error { return syscall.Munmap(b) }
