package streamlog

import "io"

// StepIter walks a log's readable steps in order — the step-iteration
// API offline replay is built on. Each Next serves one step through the
// same zero-copy view path ReadStepView uses (mmap views of sealed
// segments, copies otherwise) and hands the caller the view's release
// closure; the caller must invoke it once finished with the slices
// (calling it more than once is safe — releases are idempotent).
//
// Iteration starts at the log's retention horizon (FirstStep) — or at
// the caller's chosen step for IterFrom — and ends at the log head:
// io.EOF when the stream ended gracefully (an end record is journaled),
// ErrTruncated when the recording just stops (crash, kill, or a log
// still being written). Either way no torn or corrupt step is ever
// served: a record that fails its CRC or decode surfaces as an error
// from Next, not as data.
//
// A StepIter holds no lock between calls and pins nothing; it is safe
// to abandon one mid-iteration as long as every release obtained from
// Next has been called.
type StepIter struct {
	l    *Log
	next int
}

// Iter returns an iterator over every readable step, starting at the
// retention horizon.
func (l *Log) Iter() *StepIter {
	return l.IterFrom(l.FirstStep())
}

// IterFrom returns an iterator starting at the given step. Steps below
// the retention horizon surface as ErrEvicted from the first Next.
func (l *Log) IterFrom(step int) *StepIter {
	return &StepIter{l: l, next: step}
}

// NextStep returns the step the next call to Next will serve.
func (it *StepIter) NextStep() int { return it.next }

// Next serves the next step: its number, every writer rank's metadata
// and payload blobs, and the release closure returning the underlying
// view. At the log head it returns io.EOF (stream ended gracefully) or
// ErrTruncated (recording stops without an end record); any other error
// leaves the iterator positioned at the same step.
func (it *StepIter) Next() (step int, metas, payloads [][]byte, release func(), err error) {
	l := it.l
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, nil, nil, nil, ErrClosed
	}
	if it.next >= l.nextStep {
		ended := l.ended
		l.mu.Unlock()
		if ended {
			return 0, nil, nil, nil, io.EOF
		}
		return 0, nil, nil, nil, ErrTruncated
	}
	l.mu.Unlock()
	step = it.next
	metas, payloads, release, err = l.ReadStepView(step)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	it.next++
	return step, metas, payloads, release, nil
}
