package streamlog

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzRecord frames one record the way writeRecord does, for seeding.
func fuzzRecord(typ byte, body []byte) []byte {
	rec := binary.LittleEndian.AppendUint32(nil, uint32(1+len(body)))
	crc := crc32.Update(crc32.ChecksumIEEE([]byte{typ}), crc32.IEEETable, body)
	rec = binary.LittleEndian.AppendUint32(rec, crc)
	rec = append(rec, typ)
	return append(rec, body...)
}

func fuzzStepBody(step int, blobs ...[]byte) []byte {
	body := binary.LittleEndian.AppendUint32(nil, uint32(step))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(blobs)/2))
	for _, b := range blobs {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(b)))
		body = append(body, b...)
	}
	return body
}

// FuzzSegmentDecode feeds arbitrary bytes to the segment scanner as a
// single on-disk segment. The scan must never panic, must heal the file
// to a readable state, and every step it reports recovered must decode
// cleanly — the longest-valid-prefix contract under torn tails, bit
// flips, and truncated CRC frames.
func FuzzSegmentDecode(f *testing.F) {
	cfg := fuzzRecord(recConfig, encodeConfig(Config{WriterSize: 1, QueueDepth: 2}))
	step0 := fuzzRecord(recStep, fuzzStepBody(0, []byte("meta"), []byte("payload")))
	step1 := fuzzRecord(recStep, fuzzStepBody(1, []byte("m"), []byte("p")))
	retire := fuzzRecord(recRetire, binary.LittleEndian.AppendUint32(nil, 0))
	end := fuzzRecord(recEnd, binary.LittleEndian.AppendUint32(nil, 2))

	clean := append(append(append(append(append([]byte{}, cfg...), step0...), step1...), retire...), end...)
	f.Add(clean)
	f.Add(clean[:len(clean)-3])                    // torn tail
	f.Add(append(clean[:7], clean[9:]...))         // bytes dropped mid-header
	f.Add([]byte{})                                // empty segment
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0}) // huge length, short file
	flipped := append([]byte(nil), clean...)
	flipped[len(cfg)+5] ^= 0x80 // bit flip inside step 0's CRC
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000000.seg"), data, 0o666); err != nil {
			t.Skip()
		}
		l, err := OpenLog(dir, Options{})
		if err != nil {
			return // I/O-level failure is acceptable; panics are not
		}
		defer l.Close()
		next := l.NextStep()
		for s := l.FirstStep(); s < next; s++ {
			if _, _, err := l.ReadStep(s); err != nil {
				t.Fatalf("recovered step %d unreadable: %v", s, err)
			}
		}
		// The healed log must accept appends where the scan left off.
		if _, ok := l.Config(); !ok {
			if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
				t.Fatal(err)
			}
		}
		cfg, _ := l.Config()
		metas := make([][]byte, cfg.WriterSize)
		payloads := make([][]byte, cfg.WriterSize)
		for i := range metas {
			metas[i] = []byte("resumed")
			payloads[i] = []byte("resumed")
		}
		if err := l.Append(next, metas, payloads); err != nil {
			t.Fatalf("append after heal: %v", err)
		}
	})
}

// FuzzReplayIter drives the replay step-iterator over arbitrary (often
// corrupted or truncated) log directories opened read-only, split into
// up to two segment files to also exercise the cross-segment walk. The
// iterator must never panic and never serve a torn step: every step it
// yields decoded cleanly from a CRC-valid record, and iteration always
// terminates with io.EOF, ErrTruncated, or a descriptive error. The
// read-only open must leave the corrupted files byte-for-byte intact,
// and no view may leak regardless of where iteration stopped.
func FuzzReplayIter(f *testing.F) {
	cfg := fuzzRecord(recConfig, encodeConfig(Config{WriterSize: 1, QueueDepth: 2}))
	step0 := fuzzRecord(recStep, fuzzStepBody(0, []byte("meta"), []byte("payload")))
	step1 := fuzzRecord(recStep, fuzzStepBody(1, []byte("m"), []byte("p")))
	retire := fuzzRecord(recRetire, binary.LittleEndian.AppendUint32(nil, 0))
	end := fuzzRecord(recEnd, binary.LittleEndian.AppendUint32(nil, 2))

	clean := append(append(append(append(append([]byte{}, cfg...), step0...), step1...), retire...), end...)
	f.Add(clean, []byte{})
	f.Add(clean[:len(clean)-3], []byte{})           // torn tail, no end record
	f.Add(append([]byte{}, cfg...), clean)          // config-only head segment
	f.Add(clean[:len(cfg)+len(step0)], step1)       // step split across segments
	f.Add([]byte{}, []byte{})                       // empty log
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0}, []byte{1, 2, 3}) // huge length
	flipped := append([]byte(nil), clean...)
	flipped[len(cfg)+5] ^= 0x80 // bit flip inside step 0's CRC
	f.Add(flipped, []byte{})

	f.Fuzz(func(t *testing.T, seg0, seg1 []byte) {
		dir := t.TempDir()
		paths := []string{filepath.Join(dir, "00000000.seg")}
		if err := os.WriteFile(paths[0], seg0, 0o666); err != nil {
			t.Skip()
		}
		if len(seg1) > 0 {
			paths = append(paths, filepath.Join(dir, "00000001.seg"))
			if err := os.WriteFile(paths[1], seg1, 0o666); err != nil {
				t.Skip()
			}
		}
		l, err := OpenLog(dir, Options{ReadOnly: true})
		if err != nil {
			return // refusing corrupt input cleanly is fine; panicking is not
		}
		it := l.Iter()
		served := 0
		budget := l.NextStep() - l.FirstStep() + 1
		for {
			if served > budget {
				t.Fatalf("iterator served %d steps, more than the %d indexed", served, budget)
			}
			step, metas, payloads, release, err := it.Next()
			if err != nil {
				break // io.EOF, ErrTruncated, or corruption detected — all clean
			}
			if len(metas) == 0 || len(metas) != len(payloads) {
				t.Fatalf("step %d served with %d/%d blobs", step, len(metas), len(payloads))
			}
			// Cross-check against the copying read path: a view must never
			// disagree with a pread of the same record.
			cm, cp, rerr := l.ReadStep(step)
			if rerr != nil {
				t.Fatalf("step %d served by iterator but unreadable via ReadStep: %v", step, rerr)
			}
			for i := range cm {
				if string(cm[i]) != string(metas[i]) || string(cp[i]) != string(payloads[i]) {
					t.Fatalf("step %d rank %d: view and pread disagree", step, i)
				}
			}
			release()
			release() // releases are idempotent
			served++
		}
		if views := l.OpenViews(); views != 0 {
			t.Fatalf("%d views leaked after iteration", views)
		}
		for i, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			want := seg0
			if i == 1 {
				want = seg1
			}
			if len(data) != len(want) {
				t.Fatalf("read-only iteration mutated segment %d: %d bytes, was %d", i, len(data), len(want))
			}
		}
		l.Close()
	})
}
