package streamlog

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzRecord frames one record the way writeRecord does, for seeding.
func fuzzRecord(typ byte, body []byte) []byte {
	rec := binary.LittleEndian.AppendUint32(nil, uint32(1+len(body)))
	crc := crc32.Update(crc32.ChecksumIEEE([]byte{typ}), crc32.IEEETable, body)
	rec = binary.LittleEndian.AppendUint32(rec, crc)
	rec = append(rec, typ)
	return append(rec, body...)
}

func fuzzStepBody(step int, blobs ...[]byte) []byte {
	body := binary.LittleEndian.AppendUint32(nil, uint32(step))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(blobs)/2))
	for _, b := range blobs {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(b)))
		body = append(body, b...)
	}
	return body
}

// FuzzSegmentDecode feeds arbitrary bytes to the segment scanner as a
// single on-disk segment. The scan must never panic, must heal the file
// to a readable state, and every step it reports recovered must decode
// cleanly — the longest-valid-prefix contract under torn tails, bit
// flips, and truncated CRC frames.
func FuzzSegmentDecode(f *testing.F) {
	cfg := fuzzRecord(recConfig, encodeConfig(Config{WriterSize: 1, QueueDepth: 2}))
	step0 := fuzzRecord(recStep, fuzzStepBody(0, []byte("meta"), []byte("payload")))
	step1 := fuzzRecord(recStep, fuzzStepBody(1, []byte("m"), []byte("p")))
	retire := fuzzRecord(recRetire, binary.LittleEndian.AppendUint32(nil, 0))
	end := fuzzRecord(recEnd, binary.LittleEndian.AppendUint32(nil, 2))

	clean := append(append(append(append(append([]byte{}, cfg...), step0...), step1...), retire...), end...)
	f.Add(clean)
	f.Add(clean[:len(clean)-3])                    // torn tail
	f.Add(append(clean[:7], clean[9:]...))         // bytes dropped mid-header
	f.Add([]byte{})                                // empty segment
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0}) // huge length, short file
	flipped := append([]byte(nil), clean...)
	flipped[len(cfg)+5] ^= 0x80 // bit flip inside step 0's CRC
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000000.seg"), data, 0o666); err != nil {
			t.Skip()
		}
		l, err := OpenLog(dir, Options{})
		if err != nil {
			return // I/O-level failure is acceptable; panics are not
		}
		defer l.Close()
		next := l.NextStep()
		for s := l.FirstStep(); s < next; s++ {
			if _, _, err := l.ReadStep(s); err != nil {
				t.Fatalf("recovered step %d unreadable: %v", s, err)
			}
		}
		// The healed log must accept appends where the scan left off.
		if _, ok := l.Config(); !ok {
			if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
				t.Fatal(err)
			}
		}
		cfg, _ := l.Config()
		metas := make([][]byte, cfg.WriterSize)
		payloads := make([][]byte, cfg.WriterSize)
		for i := range metas {
			metas[i] = []byte("resumed")
			payloads[i] = []byte("resumed")
		}
		if err := l.Append(next, metas, payloads); err != nil {
			t.Fatalf("append after heal: %v", err)
		}
	})
}
