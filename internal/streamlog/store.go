package streamlog

import (
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
)

// Store is a directory of per-stream logs sharing one Options — the
// unit sbbroker mounts with -log-dir. Opening a store eagerly opens
// every stream log already on disk (healing torn tails), so a
// recovering broker can enumerate what survived the crash.
type Store struct {
	mu     sync.Mutex
	dir    string
	opts   Options
	logs   map[string]*Log
	closed bool
}

// OpenStore opens (or creates) the store rooted at dir. Every existing
// stream directory is opened and healed immediately.
func OpenStore(dir string, opts Options) (*Store, error) {
	if opts.ReadOnly {
		info, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("streamlog: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("streamlog: %s is not a directory", dir)
		}
	} else if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("streamlog: %w", err)
	}
	st := &Store{dir: dir, opts: opts, logs: make(map[string]*Log)}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("streamlog: %w", err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name, err := url.PathUnescape(e.Name())
		if err != nil {
			continue // foreign directory; leave it alone
		}
		l, err := OpenLog(st.streamDir(name), opts)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("streamlog: stream %q: %w", name, err)
		}
		st.logs[name] = l
	}
	return st, nil
}

// streamDir maps a stream name to its directory: path-escaped so any
// stream name — slashes included — stays one flat directory entry.
func (st *Store) streamDir(stream string) string {
	return st.dir + string(os.PathSeparator) + url.PathEscape(stream)
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Log returns the named stream's log, creating it on first use. A
// read-only store never creates: a stream absent from the recording is
// an error naming what is there.
func (st *Store) Log(stream string) (*Log, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil, ErrClosed
	}
	if l, ok := st.logs[stream]; ok {
		return l, nil
	}
	if st.opts.ReadOnly {
		names := make([]string, 0, len(st.logs))
		for name := range st.logs {
			names = append(names, name)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("streamlog: stream %q not in recorded store %s (recorded: %s)",
			stream, st.dir, strings.Join(names, ", "))
	}
	l, err := OpenLog(st.streamDir(stream), st.opts)
	if err != nil {
		return nil, err
	}
	st.logs[stream] = l
	return l, nil
}

// Streams returns the names of every open stream log, sorted.
func (st *Store) Streams() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.logs))
	for name := range st.logs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Segments returns the live segment count across all streams — the
// value behind the log.segments metric.
func (st *Store) Segments() int {
	st.mu.Lock()
	logs := make([]*Log, 0, len(st.logs))
	for _, l := range st.logs {
		logs = append(logs, l)
	}
	st.mu.Unlock()
	n := 0
	for _, l := range logs {
		n += l.Segments()
	}
	return n
}

// Bytes returns the total on-disk size across all streams — the value
// behind the log.bytes metric.
func (st *Store) Bytes() int64 {
	st.mu.Lock()
	logs := make([]*Log, 0, len(st.logs))
	for _, l := range st.logs {
		logs = append(logs, l)
	}
	st.mu.Unlock()
	var n int64
	for _, l := range logs {
		n += l.Bytes()
	}
	return n
}

// PrefixBytes returns the on-disk size of every stream whose name
// starts with prefix — the retention accounting a broker's per-tenant
// byte quota charges against (tenant "t" owns every "t/..." stream).
func (st *Store) PrefixBytes(prefix string) int64 {
	st.mu.Lock()
	logs := make([]*Log, 0, len(st.logs))
	for name, l := range st.logs {
		if strings.HasPrefix(name, prefix) {
			logs = append(logs, l)
		}
	}
	st.mu.Unlock()
	var n int64
	for _, l := range logs {
		n += l.Bytes()
	}
	return n
}

// OpenViews returns the outstanding mmap view count across all streams
// — the value behind the log.views leak gauge.
func (st *Store) OpenViews() int {
	st.mu.Lock()
	logs := make([]*Log, 0, len(st.logs))
	for _, l := range st.logs {
		logs = append(logs, l)
	}
	st.mu.Unlock()
	n := 0
	for _, l := range logs {
		n += l.OpenViews()
	}
	return n
}

// Close closes every stream log. Further operations return ErrClosed.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	var first error
	for _, l := range st.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
