package streamlog

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustLog(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func blob(step, rank int, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(step*31 + rank*7 + i)
	}
	return b
}

func appendStep(t *testing.T, l *Log, step, ranks int) {
	t.Helper()
	metas := make([][]byte, ranks)
	payloads := make([][]byte, ranks)
	for r := 0; r < ranks; r++ {
		metas[r] = blob(step, r, 16)
		payloads[r] = blob(step, r, 128)
	}
	if err := l.Append(step, metas, payloads); err != nil {
		t.Fatalf("append step %d: %v", step, err)
	}
}

func checkStep(t *testing.T, l *Log, step, ranks int) {
	t.Helper()
	metas, payloads, err := l.ReadStep(step)
	if err != nil {
		t.Fatalf("read step %d: %v", step, err)
	}
	if len(metas) != ranks || len(payloads) != ranks {
		t.Fatalf("step %d: %d/%d blobs, want %d", step, len(metas), len(payloads), ranks)
	}
	for r := 0; r < ranks; r++ {
		if !bytes.Equal(metas[r], blob(step, r, 16)) {
			t.Fatalf("step %d rank %d: meta mismatch", step, r)
		}
		if !bytes.Equal(payloads[r], blob(step, r, 128)) {
			t.Fatalf("step %d rank %d: payload mismatch", step, r)
		}
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	l := mustLog(t, t.TempDir(), Options{})
	if err := l.SetConfig(Config{WriterSize: 2, QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		appendStep(t, l, s, 2)
	}
	for s := 0; s < 5; s++ {
		checkStep(t, l, s, 2)
	}
	if got := l.NextStep(); got != 5 {
		t.Fatalf("NextStep = %d, want 5", got)
	}
	if _, _, err := l.ReadStep(5); err == nil {
		t.Fatal("ReadStep past head succeeded")
	}
	if err := l.Append(3, make([][]byte, 2), make([][]byte, 2)); err == nil {
		t.Fatal("out-of-order append succeeded")
	}
}

func TestReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	l := mustLog(t, dir, Options{})
	if err := l.SetConfig(Config{WriterSize: 3, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		appendStep(t, l, s, 3)
	}
	if err := l.AppendRetire(1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEnd(3); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustLog(t, dir, Options{})
	cfg, ok := r.Config()
	if !ok || cfg != (Config{WriterSize: 3, QueueDepth: 2}) {
		t.Fatalf("Config = %+v, %v", cfg, ok)
	}
	if got := r.NextStep(); got != 4 {
		t.Fatalf("NextStep = %d, want 4", got)
	}
	if got := r.LastRetired(); got != 1 {
		t.Fatalf("LastRetired = %d, want 1", got)
	}
	if last, ended := r.Ended(); !ended || last != 3 {
		t.Fatalf("Ended = %d, %v", last, ended)
	}
	for s := 0; s < 4; s++ {
		checkStep(t, r, s, 3)
	}
}

func TestSegmentRollAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every step rolls into its own segment.
	l := mustLog(t, dir, Options{SegmentBytes: 64, RetainSteps: 3})
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		appendStep(t, l, s, 1)
	}
	// Nothing retired yet: retention must not evict a single step.
	if got := l.FirstStep(); got != 0 {
		t.Fatalf("FirstStep = %d before any retire, want 0", got)
	}
	if err := l.AppendRetire(8); err != nil {
		t.Fatal(err)
	}
	first := l.FirstStep()
	if first < 10-3-1 { // horizon minus segment granularity slack
		t.Fatalf("FirstStep = %d, want eviction near horizon %d", first, 10-3)
	}
	if first == 0 {
		t.Fatal("retention evicted nothing")
	}
	if _, _, err := l.ReadStep(0); !errors.Is(err, ErrEvicted) {
		t.Fatalf("ReadStep(0) = %v, want ErrEvicted", err)
	}
	for s := first; s < 10; s++ {
		checkStep(t, l, s, 1)
	}
	// A reopen after eviction resumes at the true head.
	l.Close()
	r := mustLog(t, dir, Options{SegmentBytes: 64, RetainSteps: 3})
	if got := r.NextStep(); got != 10 {
		t.Fatalf("NextStep after reopen = %d, want 10", got)
	}
	if got := r.FirstStep(); got != first {
		t.Fatalf("FirstStep after reopen = %d, want %d", got, first)
	}
}

func TestRetainBytes(t *testing.T) {
	l := mustLog(t, t.TempDir(), Options{SegmentBytes: 256, RetainBytes: 1024})
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 20; s++ {
		appendStep(t, l, s, 1)
		if err := l.AppendRetire(s); err != nil {
			t.Fatal(err)
		}
	}
	if l.Bytes() > 2048 { // budget plus one active segment of slack
		t.Fatalf("Bytes = %d, want eviction near 1024", l.Bytes())
	}
	if l.FirstStep() == 0 {
		t.Fatal("byte retention evicted nothing")
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l := mustLog(t, dir, Options{})
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		appendStep(t, l, s, 1)
	}
	l.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-record: chop the last 7 bytes off the newest record.
	if err := os.Truncate(segs[0], info.Size()-7); err != nil {
		t.Fatal(err)
	}

	r := mustLog(t, dir, Options{})
	if got := r.NextStep(); got != 2 {
		t.Fatalf("NextStep after tear = %d, want 2", got)
	}
	for s := 0; s < 2; s++ {
		checkStep(t, r, s, 1)
	}
	// The healed log accepts the re-publish of the torn step.
	appendStep(t, r, 2, 1)
	checkStep(t, r, 2, 1)
}

func TestCorruptTailDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustLog(t, dir, Options{SegmentBytes: 64})
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		appendStep(t, l, s, 1)
	}
	l.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %v (%v)", segs, err)
	}
	// Flip one byte in the middle segment: everything from the flip on
	// — including intact later segments — must be dropped.
	mid := segs[1]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(mid, data, 0o666); err != nil {
		t.Fatal(err)
	}

	r := mustLog(t, dir, Options{SegmentBytes: 64})
	next := r.NextStep()
	if next < 1 || next >= 5 {
		t.Fatalf("NextStep after corruption = %d, want in [1,5)", next)
	}
	for s := 0; s < next; s++ {
		checkStep(t, r, s, 1)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) >= len(segs) {
		t.Fatalf("segments past the tear survived: %v", left)
	}
}

func TestConfigConflict(t *testing.T) {
	l := mustLog(t, t.TempDir(), Options{})
	if err := l.SetConfig(Config{WriterSize: 2, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.SetConfig(Config{WriterSize: 2, QueueDepth: 2}); err != nil {
		t.Fatalf("idempotent SetConfig: %v", err)
	}
	if err := l.SetConfig(Config{WriterSize: 3, QueueDepth: 2}); err == nil {
		t.Fatal("conflicting SetConfig succeeded")
	}
	if err := l.Append(0, [][]byte{{1}}, [][]byte{{2}}); err == nil {
		t.Fatal("append with wrong rank count succeeded")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a.fp", "weird/name with spaces", "b.fp"}
	for _, name := range names {
		l, err := st.Log(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
			t.Fatal(err)
		}
		appendStep(t, l, 0, 1)
	}
	if st.Segments() != 3 || st.Bytes() == 0 {
		t.Fatalf("Segments=%d Bytes=%d", st.Segments(), st.Bytes())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Streams()
	if len(got) != 3 {
		t.Fatalf("Streams = %v, want 3 entries", got)
	}
	want := map[string]bool{"a.fp": true, "b.fp": true, "weird/name with spaces": true}
	for _, name := range got {
		if !want[name] {
			t.Fatalf("unexpected stream %q in %v", name, got)
		}
		l, err := re.Log(name)
		if err != nil {
			t.Fatal(err)
		}
		checkStep(t, l, 0, 1)
	}
}

func TestEmptyStreamEnd(t *testing.T) {
	dir := t.TempDir()
	l := mustLog(t, dir, Options{})
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEnd(-1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	r := mustLog(t, dir, Options{})
	if last, ended := r.Ended(); !ended || last != -1 {
		t.Fatalf("Ended = %d, %v; want -1, true", last, ended)
	}
	if got := r.NextStep(); got != 0 {
		t.Fatalf("NextStep = %d, want 0", got)
	}
}

func TestFsyncStepAndSync(t *testing.T) {
	l := mustLog(t, t.TempDir(), Options{Fsync: FsyncStep})
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	appendStep(t, l, 0, 1)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
}

func TestParseFsync(t *testing.T) {
	for in, want := range map[string]FsyncMode{"": FsyncNone, "none": FsyncNone, "step": FsyncStep} {
		got, err := ParseFsync(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsync(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsync("always"); err == nil {
		t.Fatal("ParseFsync accepted garbage")
	}
	if FsyncStep.String() != "step" || FsyncNone.String() != "none" {
		t.Fatal("FsyncMode.String mismatch")
	}
}

func TestLongestValidPrefixProperty(t *testing.T) {
	// Build a clean log, then corrupt it at every byte offset in turn:
	// reopening must never fail and must recover a dense prefix.
	dir := t.TempDir()
	l := mustLog(t, dir, Options{})
	if err := l.SetConfig(Config{WriterSize: 2, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		appendStep(t, l, s, 2)
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	clean, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(clean); off += 13 {
		sub := t.TempDir()
		data := append([]byte(nil), clean...)
		data[off] ^= 0x5a
		if err := os.WriteFile(filepath.Join(sub, "00000000.seg"), data, 0o666); err != nil {
			t.Fatal(err)
		}
		r, err := OpenLog(sub, Options{})
		if err != nil {
			t.Fatalf("offset %d: open: %v", off, err)
		}
		next := r.NextStep()
		if next < 0 || next > 3 {
			t.Fatalf("offset %d: NextStep = %d", off, next)
		}
		for s := 0; s < next; s++ {
			if _, _, err := r.ReadStep(s); err != nil {
				t.Fatalf("offset %d: step %d unreadable: %v", off, s, err)
			}
		}
		r.Close()
	}
}

func TestEmptyBlobs(t *testing.T) {
	l := mustLog(t, t.TempDir(), Options{})
	if err := l.SetConfig(Config{WriterSize: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, [][]byte{nil}, [][]byte{nil}); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(l.NextStep()); got != "1" {
		t.Fatalf("NextStep = %s", got)
	}
}
