// Package streamlog is the durable half of the stream fabric: a
// segmented, append-only log of every timestep a stream publishes,
// framed with the same length+CRC record layout the TCP transport uses
// on the wire. The flexpath broker writes behind the in-memory queue —
// a step is framed to the active segment before retirement is allowed
// to recycle its pooled buffers — so a broker that crashes can rebuild
// its stream state from the log and in-flight workflows resume through
// the ordinary detach/re-attach path. The same log doubles as a replay
// substrate: a catch-up reader opened at step K serves historical steps
// from segment reads and hands off to live tailing at the log head.
//
// On-disk layout: one directory per stream under the store root, with
// numbered segment files (00000000.seg, 00000001.seg, …). Each record
// is
//
//	u32 length   (type byte + body, little-endian)
//	u32 crc      (CRC-32/IEEE over type byte + body)
//	u8  type     (recConfig | recStep | recRetire | recEnd)
//	body
//
// Every segment opens with a recConfig record carrying the stream's
// writer-group size and queue depth, so any single segment is
// self-describing. Torn tails — a crash mid-write — are healed on open:
// the scan keeps the longest valid prefix, truncates the segment at the
// first invalid record, and drops any later segments.
//
// Retention is by whole segments, and never evicts a step the broker
// has not retired: a segment is removable only once its highest step
// has a retire record, and only when the configured step- or byte-
// budget is exceeded. Reads below the retention horizon get ErrEvicted.
//
// The package is dependency-free below the standard library;
// observability (spans, counters) is the broker's job.
package streamlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Record types. recConfig opens every segment; recStep carries one full
// timestep (all writer ranks); recRetire and recEnd journal the
// broker's retirement watermark and graceful stream end.
const (
	recConfig byte = 1
	recStep   byte = 2
	recRetire byte = 3
	recEnd    byte = 4
)

const (
	// recHeader is the fixed prefix of every record: u32 length + u32 CRC.
	recHeader = 8
	// maxRecord bounds a record's length field, mirroring the wire
	// codec's frame cap: anything larger is corruption, not data.
	maxRecord = 1 << 30
	// configVersion versions the recConfig body.
	configVersion = 1
	// DefaultSegmentBytes is the roll-over threshold used when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 64 << 20
	// segSuffix names segment files.
	segSuffix = ".seg"
)

// Errors.
var (
	// ErrEvicted is returned by ReadStep for a step below the retention
	// horizon: it was durably logged once, then reclaimed by the
	// step/byte budget after the broker retired it.
	ErrEvicted = errors.New("streamlog: step evicted by retention")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("streamlog: log closed")
	// ErrReadOnly is returned by every mutating operation on a log
	// opened with Options.ReadOnly.
	ErrReadOnly = errors.New("streamlog: log is read-only")
	// ErrTruncated is reported by a StepIter that reached the log head
	// without finding an end record: the recording stopped mid-stream
	// (crash, kill, or a live log still being written). Every step before
	// the head was served intact — the error only says the stream's tail
	// is unknown.
	ErrTruncated = errors.New("streamlog: log ends without an end record")
)

// FsyncMode selects when appends reach stable storage.
type FsyncMode int

const (
	// FsyncNone leaves flushing to the OS page cache: fastest, loses the
	// unsynced tail on power failure (the torn-tail scan heals it).
	FsyncNone FsyncMode = iota
	// FsyncStep fsyncs the active segment after every appended record —
	// a published step survives anything short of media failure.
	FsyncStep
)

// String renders the mode as its flag spelling.
func (m FsyncMode) String() string {
	if m == FsyncStep {
		return "step"
	}
	return "none"
}

// ParseFsync parses a -log-fsync flag value.
func ParseFsync(s string) (FsyncMode, error) {
	switch s {
	case "none", "":
		return FsyncNone, nil
	case "step":
		return FsyncStep, nil
	}
	return FsyncNone, fmt.Errorf("streamlog: unknown fsync mode %q (want none or step)", s)
}

// Options configures a log (and every log of a store).
type Options struct {
	// SegmentBytes is the size at which the active segment rolls over;
	// 0 selects DefaultSegmentBytes. A single oversized record still
	// lands in one segment.
	SegmentBytes int64
	// RetainSteps keeps at least the last RetainSteps steps readable;
	// older retired segments become evictable. 0 = retain everything.
	RetainSteps int
	// RetainBytes evicts oldest retired segments while the log exceeds
	// this many bytes. 0 = no byte budget.
	RetainBytes int64
	// Fsync is the durability policy for appends.
	Fsync FsyncMode
	// NoMmap disables the mmap'd read path for sealed segments:
	// ReadStepView then always copies via pread, exactly like ReadStep.
	// Platforms without shared file mappings imply it.
	NoMmap bool
	// ReadOnly opens the log without the ability — or the need — to
	// mutate anything: segment files open O_RDONLY, a torn tail is
	// tolerated in place instead of healed by truncation, no directory is
	// created, and every mutating method returns ErrReadOnly. This is the
	// mode offline replay uses: a recorded run must come back from a
	// replay byte-for-byte untouched. As a bonus the final segment is
	// sealed by definition (nothing will ever append), so even it serves
	// mmap views.
	ReadOnly bool
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

// Config is the stream configuration journaled at the head of every
// segment — what a recovering broker needs to rebuild the stream.
type Config struct {
	WriterSize int
	QueueDepth int
}

// segment is one on-disk log file.
type segment struct {
	seq     int
	path    string
	f       *os.File
	size    int64
	minStep int // lowest step record in this segment, -1 if none
	maxStep int // highest step record, -1 if none

	// Read-only mapping of a sealed segment (ReadStepView). refs counts
	// outstanding views; pendingUnmap defers the munmap of an evicted or
	// closed segment until the last view releases. mapBroken remembers a
	// failed mmap so the segment permanently falls back to pread.
	mem          []byte
	refs         int
	pendingUnmap bool
	mapBroken    bool
}

// stepLoc locates one step record.
type stepLoc struct {
	seg *segment
	off int64
}

// Log is the durable journal of one stream. All methods are safe for
// concurrent use.
type Log struct {
	mu     sync.Mutex
	dir    string
	opts   Options
	closed bool

	cfg     Config
	haveCfg bool

	segs    []*segment // ascending seq; last is the active segment
	nextSeq int
	index   map[int]stepLoc
	total   int64 // bytes across all live segments

	firstStep   int // lowest readable step (evicted below)
	nextStep    int // next step Append accepts
	lastRetired int // highest retired step, -1 if none
	ended       bool
	lastStep    int // valid once ended

	views int // outstanding ReadStepView mmap views (leak accounting)

	scratch []byte // record assembly buffer, reused across appends
}

// OpenLog opens (or creates) the log rooted at dir, healing any torn
// tail left by a crash: the scan keeps the longest valid record prefix,
// truncates the first damaged segment at its last valid record, and
// drops later segments entirely.
func OpenLog(dir string, opts Options) (*Log, error) {
	if opts.ReadOnly {
		info, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("streamlog: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("streamlog: %s is not a directory", dir)
		}
	} else if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("streamlog: %w", err)
	}
	l := &Log{
		dir:         dir,
		opts:        opts,
		index:       make(map[int]stepLoc),
		lastRetired: -1,
	}
	if err := l.scan(); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// listSegments returns the segment files under dir in ascending
// sequence order.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("streamlog: %w", err)
	}
	var seqs []int
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(name, segSuffix))
		if err != nil || n < 0 {
			continue // foreign file; leave it alone
		}
		seqs = append(seqs, n)
	}
	sort.Ints(seqs)
	return seqs, nil
}

func segPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("%08d%s", seq, segSuffix))
}

// scan replays every segment into the in-memory index, healing torn
// tails. Called once from OpenLog; no lock needed.
func (l *Log) scan() error {
	seqs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	sawStep := false
	mode := os.O_RDWR
	if l.opts.ReadOnly {
		mode = os.O_RDONLY
	}
	for i, seq := range seqs {
		seg := &segment{seq: seq, path: segPath(l.dir, seq), minStep: -1, maxStep: -1}
		f, err := os.OpenFile(seg.path, mode, 0)
		if err != nil {
			return fmt.Errorf("streamlog: %w", err)
		}
		seg.f = f
		valid, clean, err := l.scanSegment(seg)
		if err != nil {
			return err
		}
		l.segs = append(l.segs, seg)
		l.total += valid
		if seg.minStep >= 0 && !sawStep {
			l.firstStep = seg.minStep
			sawStep = true
		}
		if !clean {
			// Torn tail: truncate this segment at its last valid record
			// and drop every later segment — records beyond the tear are
			// not trustworthy even if individually CRC-clean. A read-only
			// open must leave the recording exactly as found, so it keeps
			// the valid prefix indexed and simply stops scanning: same
			// view of the data, no disk mutation.
			if l.opts.ReadOnly {
				break
			}
			if err := f.Truncate(valid); err != nil {
				return fmt.Errorf("streamlog: healing %s: %w", seg.path, err)
			}
			for _, later := range seqs[i+1:] {
				if err := os.Remove(segPath(l.dir, later)); err != nil {
					return fmt.Errorf("streamlog: dropping segment past tear: %w", err)
				}
			}
			break
		}
	}
	if len(l.segs) > 0 {
		l.nextSeq = l.segs[len(l.segs)-1].seq + 1
	}
	// If retention evicted every step-holding segment, the surviving
	// retire/end records still pin the resume point: eviction requires
	// retirement, so no evicted step can exceed lastRetired.
	if l.lastRetired+1 > l.nextStep {
		l.nextStep = l.lastRetired + 1
	}
	if l.ended && l.lastStep+1 > l.nextStep {
		l.nextStep = l.lastStep + 1
	}
	if !sawStep {
		l.firstStep = l.nextStep
	}
	return nil
}

// scanSegment reads seg's records in order, applying each to the log
// state. It returns the byte offset of the end of the last valid
// record and whether the segment ended cleanly (no torn tail).
func (l *Log) scanSegment(seg *segment) (valid int64, clean bool, err error) {
	info, err := seg.f.Stat()
	if err != nil {
		return 0, false, fmt.Errorf("streamlog: %w", err)
	}
	size := info.Size()
	var off int64
	hdr := make([]byte, recHeader)
	var body []byte
	for off < size {
		if size-off < recHeader {
			return off, false, nil
		}
		if _, err := seg.f.ReadAt(hdr, off); err != nil {
			return off, false, nil
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n < 1 || n > maxRecord || off+recHeader+n > size {
			return off, false, nil
		}
		if int64(cap(body)) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := seg.f.ReadAt(body, off+recHeader); err != nil {
			return off, false, nil
		}
		if crc32.ChecksumIEEE(body) != want {
			return off, false, nil
		}
		if !l.applyRecord(seg, off, body[0], body[1:]) {
			return off, false, nil
		}
		off += recHeader + n
		seg.size = off
	}
	return off, true, nil
}

// applyRecord folds one scanned record into the log state. A
// structurally invalid record (CRC-clean but malformed) reports false,
// which the scan treats as a tear at this offset.
func (l *Log) applyRecord(seg *segment, off int64, typ byte, body []byte) bool {
	switch typ {
	case recConfig:
		cfg, ok := decodeConfig(body)
		if !ok {
			return false
		}
		if l.haveCfg && cfg != l.cfg {
			return false // a stream's config never changes mid-log
		}
		l.cfg, l.haveCfg = cfg, true
	case recStep:
		step, _, _, ok := decodeStep(body)
		if !ok || (len(l.index) > 0 && step != l.nextStep) {
			return false
		}
		l.index[step] = stepLoc{seg: seg, off: off}
		if seg.minStep < 0 {
			seg.minStep = step
		}
		seg.maxStep = step
		l.nextStep = step + 1
	case recRetire:
		if len(body) != 4 {
			return false
		}
		if step := int(binary.LittleEndian.Uint32(body)); step > l.lastRetired {
			l.lastRetired = step
		}
	case recEnd:
		if len(body) != 4 {
			return false
		}
		l.ended = true
		l.lastStep = int(binary.LittleEndian.Uint32(body)) - 1
	default:
		return false
	}
	return true
}

func decodeConfig(body []byte) (Config, bool) {
	if len(body) < 12 {
		return Config{}, false
	}
	if binary.LittleEndian.Uint32(body[0:4]) != configVersion {
		return Config{}, false
	}
	cfg := Config{
		WriterSize: int(binary.LittleEndian.Uint32(body[4:8])),
		QueueDepth: int(binary.LittleEndian.Uint32(body[8:12])),
	}
	if cfg.WriterSize < 1 || cfg.WriterSize > 1<<16 ||
		cfg.QueueDepth < 1 || cfg.QueueDepth > 1<<16 {
		return Config{}, false
	}
	return cfg, true
}

func encodeConfig(cfg Config) []byte {
	b := make([]byte, 0, 12)
	b = binary.LittleEndian.AppendUint32(b, configVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(cfg.WriterSize))
	b = binary.LittleEndian.AppendUint32(b, uint32(cfg.QueueDepth))
	return b
}

// decodeStep parses a recStep body: u32 step, u32 nranks, then per rank
// u32 meta length + meta and u32 payload length + payload. Defensive
// against CRC-clean garbage: every length is bounds-checked.
func decodeStep(body []byte) (step int, metas, payloads [][]byte, ok bool) {
	if len(body) < 8 {
		return 0, nil, nil, false
	}
	step = int(binary.LittleEndian.Uint32(body[0:4]))
	nranks := int(binary.LittleEndian.Uint32(body[4:8]))
	// Each rank needs at least two length prefixes, so nranks is bounded
	// by the body itself — checked before allocating rank slices.
	if nranks < 1 || nranks > 1<<16 || nranks*8 > len(body)-8 {
		return 0, nil, nil, false
	}
	rest := body[8:]
	metas = make([][]byte, nranks)
	payloads = make([][]byte, nranks)
	next := func() ([]byte, bool) {
		if len(rest) < 4 {
			return nil, false
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		rest = rest[4:]
		if n < 0 || n > len(rest) {
			return nil, false
		}
		b := rest[:n]
		rest = rest[n:]
		return b, true
	}
	for i := 0; i < nranks; i++ {
		var okm, okp bool
		if metas[i], okm = next(); !okm {
			return 0, nil, nil, false
		}
		if payloads[i], okp = next(); !okp {
			return 0, nil, nil, false
		}
	}
	if len(rest) != 0 {
		return 0, nil, nil, false
	}
	return step, metas, payloads, true
}

// SetConfig journals the stream configuration. It must be called before
// the first Append; calling again with the same values is a no-op, with
// different values an error (a stream's shape is immutable).
func (l *Log) SetConfig(cfg Config) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.writable(); err != nil {
		return err
	}
	if cfg.WriterSize < 1 || cfg.QueueDepth < 1 {
		return fmt.Errorf("streamlog: invalid config %+v", cfg)
	}
	if l.haveCfg {
		if cfg != l.cfg {
			return fmt.Errorf("streamlog: config conflict: have %+v, got %+v", l.cfg, cfg)
		}
		return nil
	}
	l.cfg, l.haveCfg = cfg, true
	return nil
}

// Config returns the journaled stream configuration, if any.
func (l *Log) Config() (Config, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cfg, l.haveCfg
}

// Append journals one fully published timestep: every writer rank's
// metadata and payload blob. Steps must be appended densely in order —
// step must equal NextStep. The blobs are copied into the record; the
// caller keeps ownership.
func (l *Log) Append(step int, metas, payloads [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.writable(); err != nil {
		return err
	}
	if !l.haveCfg {
		return errors.New("streamlog: Append before SetConfig")
	}
	if len(metas) != l.cfg.WriterSize || len(payloads) != l.cfg.WriterSize {
		return fmt.Errorf("streamlog: step %d has %d/%d blobs, writer size is %d",
			step, len(metas), len(payloads), l.cfg.WriterSize)
	}
	if step != l.nextStep {
		return fmt.Errorf("streamlog: append of step %d, expected %d", step, l.nextStep)
	}
	body := l.scratch[:0]
	body = binary.LittleEndian.AppendUint32(body, uint32(step))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(metas)))
	for i := range metas {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(metas[i])))
		body = append(body, metas[i]...)
		body = binary.LittleEndian.AppendUint32(body, uint32(len(payloads[i])))
		body = append(body, payloads[i]...)
	}
	l.scratch = body[:0]
	seg, off, err := l.appendRecord(recStep, body)
	if err != nil {
		return err
	}
	l.index[step] = stepLoc{seg: seg, off: off}
	if seg.minStep < 0 {
		seg.minStep = step
	}
	seg.maxStep = step
	if len(l.index) == 1 {
		l.firstStep = step
	}
	l.nextStep = step + 1
	return l.afterAppend()
}

// AppendRetire journals that the broker retired every step up to and
// including step — the marker that makes older segments evictable.
func (l *Log) AppendRetire(step int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.writable(); err != nil {
		return err
	}
	body := binary.LittleEndian.AppendUint32(nil, uint32(step))
	if _, _, err := l.appendRecord(recRetire, body); err != nil {
		return err
	}
	if step > l.lastRetired {
		l.lastRetired = step
	}
	return l.afterAppend()
}

// AppendEnd journals the stream's graceful end at lastStep (the highest
// step all writer ranks published; -1 for an empty stream).
func (l *Log) AppendEnd(lastStep int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.writable(); err != nil {
		return err
	}
	body := binary.LittleEndian.AppendUint32(nil, uint32(lastStep+1))
	if _, _, err := l.appendRecord(recEnd, body); err != nil {
		return err
	}
	l.ended, l.lastStep = true, lastStep
	return l.afterAppend()
}

// writable rejects mutation on a closed or read-only log. Caller holds
// the lock.
func (l *Log) writable() error {
	if l.closed {
		return ErrClosed
	}
	if l.opts.ReadOnly {
		return ErrReadOnly
	}
	return nil
}

// afterAppend applies the fsync policy and retention budget. Caller
// holds the lock.
func (l *Log) afterAppend() error {
	if l.opts.Fsync == FsyncStep {
		if err := l.segs[len(l.segs)-1].f.Sync(); err != nil {
			return fmt.Errorf("streamlog: %w", err)
		}
	}
	return l.evict()
}

// appendRecord frames one record onto the active segment, rolling to a
// new segment when the size threshold is crossed. Caller holds the
// lock. Returns the segment and offset the record landed at.
func (l *Log) appendRecord(typ byte, body []byte) (*segment, int64, error) {
	recLen := int64(recHeader + 1 + len(body))
	if 1+len(body) > maxRecord {
		return nil, 0, fmt.Errorf("streamlog: record of %d bytes exceeds limit", len(body))
	}
	seg := l.activeSegment()
	if seg == nil || (seg.size > 0 && seg.size+recLen > l.opts.segmentBytes()) {
		var err error
		if seg, err = l.roll(); err != nil {
			return nil, 0, err
		}
	}
	off, err := l.writeRecord(seg, typ, body)
	if err != nil {
		return nil, 0, err
	}
	return seg, off, nil
}

func (l *Log) activeSegment() *segment {
	if len(l.segs) == 0 {
		return nil
	}
	return l.segs[len(l.segs)-1]
}

// roll opens a fresh segment and journals the config record at its
// head, making every segment self-describing. Caller holds the lock.
func (l *Log) roll() (*segment, error) {
	seg := &segment{seq: l.nextSeq, path: segPath(l.dir, l.nextSeq), minStep: -1, maxStep: -1}
	f, err := os.OpenFile(seg.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return nil, fmt.Errorf("streamlog: %w", err)
	}
	seg.f = f
	l.nextSeq++
	l.segs = append(l.segs, seg)
	if l.haveCfg {
		if _, err := l.writeRecord(seg, recConfig, encodeConfig(l.cfg)); err != nil {
			return nil, err
		}
	}
	return seg, nil
}

// writeRecord frames header+type+body onto seg in one write. Caller
// holds the lock. Returns the record's starting offset.
func (l *Log) writeRecord(seg *segment, typ byte, body []byte) (int64, error) {
	rec := make([]byte, 0, recHeader+1+len(body))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(1+len(body)))
	crc := crc32.Update(crc32.ChecksumIEEE([]byte{typ}), crc32.IEEETable, body)
	rec = binary.LittleEndian.AppendUint32(rec, crc)
	rec = append(rec, typ)
	rec = append(rec, body...)
	off := seg.size
	if _, err := seg.f.WriteAt(rec, off); err != nil {
		return 0, fmt.Errorf("streamlog: %w", err)
	}
	seg.size += int64(len(rec))
	l.total += int64(len(rec))
	return off, nil
}

// evict drops oldest segments that are fully retired and outside the
// retention budget. The active segment is never evicted. Caller holds
// the lock.
func (l *Log) evict() error {
	for len(l.segs) > 1 {
		oldest := l.segs[0]
		if oldest.maxStep >= 0 && oldest.maxStep > l.lastRetired {
			return nil // holds unretired steps: never evictable
		}
		overSteps := l.opts.RetainSteps > 0 && oldest.maxStep < l.nextStep-l.opts.RetainSteps
		overBytes := l.opts.RetainBytes > 0 && l.total > l.opts.RetainBytes
		if !overSteps && !overBytes {
			return nil
		}
		for s := oldest.minStep; oldest.minStep >= 0 && s <= oldest.maxStep; s++ {
			delete(l.index, s)
		}
		if oldest.maxStep >= 0 && oldest.maxStep+1 > l.firstStep {
			l.firstStep = oldest.maxStep + 1
		}
		l.total -= oldest.size
		releaseMapping(oldest) // deferred to the last view if any are out
		oldest.f.Close()
		if err := os.Remove(oldest.path); err != nil {
			return fmt.Errorf("streamlog: %w", err)
		}
		l.segs = l.segs[1:]
	}
	return nil
}

// ReadStep returns the journaled blobs of one step, indexed by writer
// rank. The returned slices are freshly allocated; the caller owns
// them. Steps below the retention horizon return ErrEvicted; steps at
// or past NextStep return an error (the log never blocks — waiting for
// unpublished steps is the broker's job).
func (l *Log) ReadStep(step int) (metas, payloads [][]byte, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	loc, err := l.locate(step)
	if err != nil {
		return nil, nil, err
	}
	return l.readStepAt(step, loc)
}

// locate resolves a step to its record location. Caller holds the lock.
func (l *Log) locate(step int) (stepLoc, error) {
	if l.closed {
		return stepLoc{}, ErrClosed
	}
	loc, ok := l.index[step]
	if !ok {
		if step < l.nextStep {
			return stepLoc{}, fmt.Errorf("%w: step %d below horizon %d", ErrEvicted, step, l.firstStep)
		}
		return stepLoc{}, fmt.Errorf("streamlog: step %d not yet appended (next is %d)", step, l.nextStep)
	}
	return loc, nil
}

// readStepAt is the copying read path: pread the record into fresh
// allocations. Caller holds the lock.
func (l *Log) readStepAt(step int, loc stepLoc) (metas, payloads [][]byte, err error) {
	hdr := make([]byte, recHeader)
	if _, err := loc.seg.f.ReadAt(hdr, loc.off); err != nil {
		return nil, nil, fmt.Errorf("streamlog: %w", err)
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n < 1 || n > maxRecord {
		return nil, nil, fmt.Errorf("streamlog: step %d record corrupt", step)
	}
	body := make([]byte, n)
	if _, err := loc.seg.f.ReadAt(body, loc.off+recHeader); err != nil {
		return nil, nil, fmt.Errorf("streamlog: %w", err)
	}
	if crc32.ChecksumIEEE(body) != want || body[0] != recStep {
		return nil, nil, fmt.Errorf("streamlog: step %d record corrupt", step)
	}
	got, metas, payloads, ok := decodeStep(body[1:])
	if !ok || got != step {
		return nil, nil, fmt.Errorf("streamlog: step %d record corrupt", step)
	}
	return metas, payloads, nil
}

// ReadStepView is ReadStep without the copy when one can be had for
// free: a step living in a sealed segment (any segment but the active
// one — sealed segments are never written again) is served as views
// into a read-only mmap of the segment file, so replaying history moves
// no payload bytes through the Go heap. The caller must call release
// exactly once when finished with every returned slice; until then the
// backing mapping survives segment eviction and even log Close (the
// munmap is deferred to the final release). Steps in the active
// segment, logs opened with Options.NoMmap, and platforms without
// shared file mappings fall back to the copying path — release is then
// a no-op, and the caller need not know which path served it.
func (l *Log) ReadStepView(step int) (metas, payloads [][]byte, release func(), err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	loc, err := l.locate(step)
	if err != nil {
		return nil, nil, nil, err
	}
	if !l.mapSealed(loc.seg) {
		metas, payloads, err = l.readStepAt(step, loc)
		return metas, payloads, func() {}, err
	}
	mem, off := loc.seg.mem, loc.off
	corrupt := func() error { return fmt.Errorf("streamlog: step %d record corrupt", step) }
	if off+recHeader > int64(len(mem)) {
		return nil, nil, nil, corrupt()
	}
	n := int64(binary.LittleEndian.Uint32(mem[off : off+4]))
	want := binary.LittleEndian.Uint32(mem[off+4 : off+8])
	if n < 1 || n > maxRecord || off+recHeader+n > int64(len(mem)) {
		return nil, nil, nil, corrupt()
	}
	body := mem[off+recHeader : off+recHeader+n]
	if crc32.ChecksumIEEE(body) != want || body[0] != recStep {
		return nil, nil, nil, corrupt()
	}
	got, metas, payloads, ok := decodeStep(body[1:])
	if !ok || got != step {
		return nil, nil, nil, corrupt()
	}
	seg := loc.seg
	seg.refs++
	l.views++
	// The release closure is idempotent: an abort path that unwinds
	// through both its own cleanup and a deferred one must not decrement
	// the view count twice — a double munmap of a shared mapping would
	// corrupt every other outstanding view of the segment.
	released := false
	release = func() {
		l.mu.Lock()
		if released {
			l.mu.Unlock()
			return
		}
		released = true
		l.views--
		seg.refs--
		if seg.refs == 0 && seg.pendingUnmap && seg.mem != nil {
			munmap(seg.mem)
			seg.mem = nil
		}
		l.mu.Unlock()
	}
	return metas, payloads, release, nil
}

// mapSealed lazily maps a sealed segment read-only, reporting whether
// the mapping is usable. Caller holds the lock. A failed mmap marks the
// segment broken so every later read preads instead of retrying.
func (l *Log) mapSealed(seg *segment) bool {
	if seg.mem != nil {
		return true
	}
	if seg.mapBroken || l.opts.NoMmap || !mmapSupported() || seg.size == 0 {
		return false
	}
	// The active segment may still grow, so it always preads — except on
	// a read-only log, where nothing will ever append and even the final
	// segment is sealed.
	if !l.opts.ReadOnly && seg == l.activeSegment() {
		return false
	}
	mem, err := mmapReadOnly(seg.f, seg.size)
	if err != nil {
		seg.mapBroken = true
		return false
	}
	seg.mem = mem
	return true
}

// releaseMapping unmaps a segment that is leaving the log (eviction or
// Close), deferring to the last outstanding view when one exists.
// Caller holds the lock.
func releaseMapping(seg *segment) {
	if seg.mem == nil {
		return
	}
	if seg.refs > 0 {
		seg.pendingUnmap = true
		return
	}
	munmap(seg.mem)
	seg.mem = nil
}

// FirstStep returns the lowest readable step (steps below it were
// evicted by retention).
func (l *Log) FirstStep() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstStep
}

// NextStep returns the step the next Append must carry — one past the
// highest journaled step.
func (l *Log) NextStep() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextStep
}

// LastRetired returns the highest step with a retire record, or -1.
func (l *Log) LastRetired() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastRetired
}

// Ended reports whether the stream ended gracefully, and at which step.
func (l *Log) Ended() (lastStep int, ended bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastStep, l.ended
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Bytes returns the total size of all live segments.
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// OpenViews returns the number of ReadStepView mmap views not yet
// released — the value behind the log.views leak gauge. A quiescent log
// (no reader mid-step) must report zero; anything else is a view whose
// release closure was dropped on an early-return path.
func (l *Log) OpenViews() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.views
}

// Sync flushes the active segment to stable storage regardless of the
// fsync policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.writable(); err != nil {
		return err
	}
	if seg := l.activeSegment(); seg != nil {
		if err := seg.f.Sync(); err != nil {
			return fmt.Errorf("streamlog: %w", err)
		}
	}
	return nil
}

// Close syncs and closes every segment file. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	if seg := l.activeSegment(); seg != nil && !l.opts.ReadOnly {
		if err := seg.f.Sync(); err != nil && first == nil {
			first = err
		}
	}
	for _, seg := range l.segs {
		releaseMapping(seg)
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
