// Package e2e tests the repository's binaries as real OS processes: an
// sbbroker serving the stream fabric over TCP, and one sbcomp process
// per workflow component — the closest this reproduction comes to the
// paper's deployment model of separately launched MPI executables
// rendezvousing through FlexPath.
package e2e

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles the commands once per test run.
func buildBinaries(t *testing.T) (broker, comp, run string) {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"sbbroker", "sbcomp", "sbrun"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "repro/cmd/"+name)
		cmd.Dir = repoRoot(t)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
	}
	return filepath.Join(dir, "sbbroker"), filepath.Join(dir, "sbcomp"), filepath.Join(dir, "sbrun")
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/e2e → repo root
}

// startBroker launches sbbroker on a free TCP port and returns its
// address. startBrokerOn (transport_matrix_test.go) is the flavor-aware
// generalization.
func startBroker(t *testing.T, bin string) string {
	t.Helper()
	addr := startBrokerOn(t, bin, "-addr", "127.0.0.1:0")
	if !strings.Contains(addr, ":") {
		t.Fatalf("could not parse broker address %q", addr)
	}
	return addr
}

func TestMultiProcessLAMMPSWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	brokerBin, compBin, _ := buildBinaries(t)
	addr := startBroker(t, brokerBin)

	outDir := t.TempDir()
	histPath := filepath.Join(outDir, "velocity_hist.txt")

	// The Fig. 8 workflow, one OS process per component, launched in
	// downstream-first order to also exercise launch-order independence
	// across process boundaries.
	stages := [][]string{
		{"-broker", addr, "-n", "1", "histogram", "velos.fp", "velocities", "8", histPath},
		{"-broker", addr, "-n", "2", "magnitude", "sel.fp", "lmpsel", "velos.fp", "velocities"},
		{"-broker", addr, "-n", "2", "select", "dump.fp", "atoms", "1", "sel.fp", "lmpsel", "vx", "vy", "vz"},
		{"-broker", addr, "-n", "2", "lammps", "dump.fp", "atoms", "2000", "3"},
	}
	procs := make([]*exec.Cmd, 0, len(stages))
	for _, args := range stages {
		cmd := exec.Command(compBin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
	}
	done := make(chan error, len(procs))
	for _, p := range procs {
		go func(p *exec.Cmd) { done <- p.Wait() }(p)
	}
	deadline := time.After(120 * time.Second)
	for range procs {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("component process failed: %v", err)
			}
		case <-deadline:
			for _, p := range procs {
				p.Process.Kill()
			}
			t.Fatal("multi-process workflow timed out")
		}
	}

	data, err := os.ReadFile(histPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for step := 0; step < 3; step++ {
		want := fmt.Sprintf("# step %d", step)
		if !strings.Contains(text, want) {
			t.Fatalf("histogram output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "n=2000") {
		t.Fatalf("histogram output lost particles:\n%s", text)
	}
}

func TestSbrunScriptAgainstRemoteBroker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	brokerBin, _, runBin := buildBinaries(t)
	addr := startBroker(t, brokerBin)

	dir := t.TempDir()
	histPath := filepath.Join(dir, "radii.txt")
	script := fmt.Sprintf(`
aprun -n 2 gromacs pos.fp xyz 1000 2 &
aprun -n 2 magnitude pos.fp xyz dist.fp radii &
aprun -n 1 histogram dist.fp radii 6 %s &
wait
`, histPath)
	scriptPath := filepath.Join(dir, "wf.sh")
	if err := os.WriteFile(scriptPath, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(runBin, "-broker", addr, scriptPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("sbrun failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "end-to-end") || !strings.Contains(string(out), "histogram") {
		t.Fatalf("sbrun output unexpected:\n%s", out)
	}
	data, err := os.ReadFile(histPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "n=1000") {
		t.Fatalf("histogram output wrong:\n%s", data)
	}
}
