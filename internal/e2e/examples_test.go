package e2e

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun builds and runs every example main, checking exit
// status and a content marker in its output — the examples are part of
// the public API surface and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	cases := []struct {
		pkg    string
		marker string
	}{
		{"quickstart", "distribution of |x| at step 3"},
		{"lammps-crack", "velocity_hist.txt"},
		{"gtcp-toroid", "perpendicular pressure"},
		{"gromacs-spread", "replayed analysis matches the in situ analysis step for step: true"},
		{"dag-pipeline", "per-step statistics"},
	}
	root := repoRoot(t)
	binDir := t.TempDir()
	for _, c := range cases {
		c := c
		t.Run(c.pkg, func(t *testing.T) {
			bin := filepath.Join(binDir, c.pkg)
			build := exec.Command("go", "build", "-o", bin, "repro/examples/"+c.pkg)
			build.Dir = root
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("building example %s: %v\n%s", c.pkg, err, out)
			}
			cmd := exec.Command(bin)
			cmd.Dir = t.TempDir() // examples may write output files
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				cmd.Process.Kill()
				t.Fatalf("example %s timed out", c.pkg)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.pkg, err, out)
			}
			if !strings.Contains(string(out), c.marker) {
				t.Fatalf("example %s output missing %q:\n%s", c.pkg, c.marker, out)
			}
		})
	}
}

// TestSbbenchSmoke runs the benchmark binary at a tiny scale over every
// experiment, checking that each table renders.
func TestSbbenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sbbench skipped in -short mode")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "sbbench")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/sbbench")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sbbench: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-exp", "all", "-size", "0.02")
	cmd.Dir = t.TempDir()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("sbbench failed: %v\n%s", err, out)
	}
	for _, marker := range []string{
		"Table I:", "Fig. 9:", "Table II:", "Fig. 10:",
		"Ablation 1:", "Ablation 2:", "Ablation 3:", "Ablation 4:",
	} {
		if !strings.Contains(string(out), marker) {
			t.Fatalf("sbbench output missing %q:\n%s", marker, out)
		}
	}
	_ = os.Remove(bin)
}
