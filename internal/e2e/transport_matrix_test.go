package e2e

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// startBrokerOn launches sbbroker with the given flags and returns the
// bound address it prints (host:port for tcp, socket path for uds).
func startBrokerOn(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("sbbroker printed no address")
	}
	fields := strings.Fields(sc.Text()) // "sbbroker listening on ADDR"
	go func() {
		for sc.Scan() {
		}
	}()
	return fields[len(fields)-1]
}

// haveUnixSockets reports whether this platform can bind AF_UNIX.
func haveUnixSockets(t *testing.T) bool {
	t.Helper()
	dir, err := os.MkdirTemp("", "sbuds")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ln, err := net.Listen("unix", filepath.Join(dir, "probe.sock"))
	if err != nil {
		return false
	}
	ln.Close()
	return true
}

// TestTransportMatrixIdenticalHistogram runs the quickstart-shaped
// workflow (deterministically seeded producer → magnitude → histogram)
// once per stream fabric backend and demands a byte-identical final
// histogram file: switching -transport must change where bytes travel,
// never what arrives.
func TestTransportMatrixIdenticalHistogram(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	brokerBin, _, runBin := buildBinaries(t)

	run := func(t *testing.T, extraArgs ...string) []byte {
		t.Helper()
		dir := t.TempDir()
		histPath := filepath.Join(dir, "radii.txt")
		script := fmt.Sprintf(`
aprun -n 2 gromacs pos.fp xyz 600 3 7 &
aprun -n 2 magnitude pos.fp xyz dist.fp radii &
aprun -n 1 histogram dist.fp radii 8 %s &
wait
`, histPath)
		scriptPath := filepath.Join(dir, "wf.sh")
		if err := os.WriteFile(scriptPath, []byte(script), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(runBin, append(extraArgs, scriptPath)...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("sbrun %v failed: %v\n%s", extraArgs, err, out)
		}
		data, err := os.ReadFile(histPath)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "n=600") {
			t.Fatalf("histogram lost atoms:\n%s", data)
		}
		return data
	}

	want := run(t, "-transport", "inproc")

	t.Run("tcp", func(t *testing.T) {
		addr := startBrokerOn(t, brokerBin, "-addr", "127.0.0.1:0")
		got := run(t, "-transport", "tcp", "-broker", addr)
		if string(got) != string(want) {
			t.Fatalf("tcp histogram differs from inproc:\n--- tcp ---\n%s\n--- inproc ---\n%s", got, want)
		}
	})
	t.Run("uds", func(t *testing.T) {
		if !haveUnixSockets(t) {
			t.Skip("platform cannot bind AF_UNIX sockets")
		}
		dir, err := os.MkdirTemp("", "sbuds")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(dir) })
		sock := startBrokerOn(t, brokerBin, "-transport", "uds", "-addr", filepath.Join(dir, "b.sock"))
		got := run(t, "-transport", "uds", "-broker", sock)
		if string(got) != string(want) {
			t.Fatalf("uds histogram differs from inproc:\n--- uds ---\n%s\n--- inproc ---\n%s", got, want)
		}
	})
	t.Run("shm", func(t *testing.T) {
		if !haveUnixSockets(t) {
			t.Skip("platform cannot bind AF_UNIX sockets")
		}
		dir, err := os.MkdirTemp("", "sbshm")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(dir) })
		sock := startBrokerOn(t, brokerBin, "-transport", "shm", "-addr", filepath.Join(dir, "b.sock"))
		got := run(t, "-transport", "shm", "-broker", sock)
		if string(got) != string(want) {
			t.Fatalf("shm histogram differs from inproc:\n--- shm ---\n%s\n--- inproc ---\n%s", got, want)
		}
	})
	// auto against a broker whose socket path lives on the filesystem
	// must resolve every edge to shm: same bytes as every other fabric,
	// with the per-edge resolution left entirely to the plan layer.
	t.Run("auto", func(t *testing.T) {
		if !haveUnixSockets(t) {
			t.Skip("platform cannot bind AF_UNIX sockets")
		}
		dir, err := os.MkdirTemp("", "sbshm")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(dir) })
		sock := startBrokerOn(t, brokerBin, "-transport", "shm", "-addr", filepath.Join(dir, "b.sock"))
		got := run(t, "-transport", "auto", "-broker", sock)
		if string(got) != string(want) {
			t.Fatalf("auto histogram differs from inproc:\n--- auto ---\n%s\n--- inproc ---\n%s", got, want)
		}
	})
}
