package e2e

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildServiceBinaries compiles sbbroker and sbctl once per test.
func buildServiceBinaries(t *testing.T) (broker, ctl string) {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"sbbroker", "sbctl"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "repro/cmd/"+name)
		cmd.Dir = repoRoot(t)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
	}
	return filepath.Join(dir, "sbbroker"), filepath.Join(dir, "sbctl")
}

// startServiceBroker launches sbbroker with an admin endpoint and
// returns the admin API base URL.
func startServiceBroker(t *testing.T, bin string, extra ...string) string {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	adminURL := ""
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "admin API on ") {
			// "sbbroker admin API on http://127.0.0.1:PORT/v1/tenants"
			fields := strings.Fields(line)
			adminURL = strings.TrimSuffix(fields[len(fields)-1], "/v1/tenants")
			break
		}
	}
	if adminURL == "" {
		t.Fatal("sbbroker printed no admin API address")
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return adminURL
}

func sbctl(t *testing.T, bin, adminURL string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", adminURL}, args...)...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestBrokerAsAServiceTwoTenants is the acceptance walk of the
// control plane: one long-running sbbroker process serves two tenants
// whose workflows — deliberately using IDENTICAL stream names — run
// concurrently, isolated by the tenant namespace, with status,
// quota enforcement, and graceful eviction all driven through sbctl.
func TestBrokerAsAServiceTwoTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	brokerBin, ctlBin := buildServiceBinaries(t)
	adminURL := startServiceBroker(t, brokerBin)

	// Register tenants: alice generously, bob with a one-workflow cap.
	if out, err := sbctl(t, ctlBin, adminURL, "tenant", "add", "alice", "-max-workflows", "4"); err != nil {
		t.Fatalf("tenant add alice: %v\n%s", err, out)
	}
	if out, err := sbctl(t, ctlBin, adminURL, "tenant", "add", "bob", "-max-workflows", "1", "-max-queue-depth", "4"); err != nil {
		t.Fatalf("tenant add bob: %v\n%s", err, out)
	}

	// Both scripts name the same streams; isolation is the broker's job.
	outDir := t.TempDir()
	script := func(tenant string, atoms int) string {
		path := filepath.Join(outDir, tenant+".sb")
		hist := filepath.Join(outDir, tenant+"_hist.txt")
		body := fmt.Sprintf(`
aprun -n 1 gromacs pos.fp xyz %d 3 11 &
aprun -n 1 magnitude pos.fp xyz dist.fp radii &
aprun -n 1 histogram dist.fp radii 5 %s &
wait
`, atoms, hist)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	aliceScript := script("alice", 96)
	bobScript := script("bob", 64)

	// Submit both concurrently and wait for terminal states.
	var wg sync.WaitGroup
	outs := make([]string, 2)
	errs := make([]error, 2)
	for i, sub := range []struct{ tenant, path string }{
		{"alice", aliceScript}, {"bob", bobScript},
	} {
		wg.Add(1)
		go func(i int, tenant, path string) {
			defer wg.Done()
			outs[i], errs[i] = sbctl(t, ctlBin, adminURL,
				"submit", "-tenant", tenant, "-name", tenant+"-demo", "-key", tenant+"-k1", "-wait", path)
		}(i, sub.tenant, sub.path)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d failed: %v\n%s", i, err, outs[i])
		}
		if !strings.Contains(outs[i], "succeeded") {
			t.Fatalf("submission %d did not succeed:\n%s", i, outs[i])
		}
	}
	for _, tenant := range []string{"alice", "bob"} {
		data, err := os.ReadFile(filepath.Join(outDir, tenant+"_hist.txt"))
		if err != nil {
			t.Fatalf("%s histogram missing: %v", tenant, err)
		}
		if !strings.Contains(string(data), "# step 2") {
			t.Fatalf("%s histogram truncated:\n%s", tenant, data)
		}
	}

	// Idempotent resubmit: the same key reports the same submission,
	// already terminal, without re-running it.
	out, err := sbctl(t, ctlBin, adminURL, "submit", "-tenant", "alice", "-key", "alice-k1", aliceScript)
	if err != nil {
		t.Fatalf("idempotent resubmit: %v\n%s", err, out)
	}
	if !strings.Contains(out, "succeeded") {
		t.Fatalf("idempotent resubmit re-ran the workflow:\n%s", out)
	}

	// Listing and status via the CLI.
	out, err = sbctl(t, ctlBin, adminURL, "list", "-tenant", "alice")
	if err != nil || !strings.Contains(out, "alice-demo") {
		t.Fatalf("list: %v\n%s", err, out)
	}
	id := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "alice-demo") {
			id = strings.Fields(line)[0]
		}
	}
	out, err = sbctl(t, ctlBin, adminURL, "status", "-tenant", "alice", id)
	if err != nil || !strings.Contains(out, "succeeded") || !strings.Contains(out, "stage gromacs") {
		t.Fatalf("status: %v\n%s", err, out)
	}
	out, err = sbctl(t, ctlBin, adminURL, "tenant", "list")
	if err != nil || !strings.Contains(out, "alice") || !strings.Contains(out, "bob") {
		t.Fatalf("tenant list: %v\n%s", err, out)
	}

	// Graceful eviction through the CLI; the tenant disappears.
	if out, err := sbctl(t, ctlBin, adminURL, "tenant", "evict", "bob"); err != nil {
		t.Fatalf("evict: %v\n%s", err, out)
	}
	out, err = sbctl(t, ctlBin, adminURL, "tenant", "list")
	if err != nil || strings.Contains(out, "bob") {
		t.Fatalf("bob survived eviction: %v\n%s", err, out)
	}
	// Submitting as an evicted (now unknown) tenant fails cleanly.
	if out, err := sbctl(t, ctlBin, adminURL, "submit", "-tenant", "bob", bobScript); err == nil {
		t.Fatalf("submit as evicted tenant succeeded:\n%s", out)
	}
}
