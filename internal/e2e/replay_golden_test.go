package e2e

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildReplayBin compiles sbreplay once per test.
func buildReplayBin(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	out := filepath.Join(dir, "sbreplay")
	cmd := exec.Command("go", "build", "-o", out, "repro/cmd/sbreplay")
	cmd.Dir = repoRoot(t)
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sbreplay: %v\n%s", err, msg)
	}
	return out
}

// runBrokerRecording launches sbbroker with a log directory, calls fn
// with the bound address, then SIGTERMs the broker and waits for it to
// exit — guaranteeing the recording on disk is complete (flushed, end
// records journaled) before returning. The harness's startBrokerOn
// cleanup kills brokers outright, which is exactly what a replay test
// must not do to its recording.
func runBrokerRecording(t *testing.T, bin, logDir string, brokerArgs []string, fn func(addr string)) {
	t.Helper()
	cmd := exec.Command(bin, append(brokerArgs, "-log-dir", logDir)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	t.Cleanup(func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	buf := make([]byte, 256)
	n, err := stdout.Read(buf)
	if err != nil {
		t.Fatalf("sbbroker printed nothing: %v", err)
	}
	line := string(buf[:n])
	fields := strings.Fields(strings.SplitN(line, "\n", 2)[0])
	if len(fields) == 0 {
		t.Fatalf("sbbroker banner %q", line)
	}
	addr := fields[len(fields)-1]
	go func() {
		for {
			if _, err := stdout.Read(buf); err != nil {
				return
			}
		}
	}()

	fn(addr)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
		killed = true
	case <-time.After(30 * time.Second):
		t.Fatal("sbbroker did not exit after SIGTERM")
	}
}

// TestReplayGoldenAcrossTransports is the offline re-analysis golden
// test: run the crack-shaped LAMMPS workflow live once per stream
// fabric backend with a durable log attached, then re-run the
// histogram component offline with sbreplay against each recording.
// Every replayed histogram must be byte-identical to its live run's —
// and since the live runs agree across transports, all four replays
// agree with each other: the recording, not the fabric, defines the
// data.
func TestReplayGoldenAcrossTransports(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	brokerBin, _, runBin := buildBinaries(t)
	replayBin := buildReplayBin(t)

	// liveRun executes the workflow over the given sbrun args with its
	// histogram written to histPath, recording to logDir when the
	// in-process transport carries the log itself.
	liveRun := func(t *testing.T, dir, histPath, logDir string, extraArgs ...string) {
		t.Helper()
		script := fmt.Sprintf(`
aprun -n 1 histogram m.fp mag 8 %s &
aprun -n 2 magnitude dump.fp atoms m.fp mag &
aprun -n 2 lammps dump.fp atoms 64 3 &
wait
`, histPath)
		scriptPath := filepath.Join(dir, "wf.sh")
		if err := os.WriteFile(scriptPath, []byte(script), 0o644); err != nil {
			t.Fatal(err)
		}
		args := extraArgs
		if logDir != "" {
			args = append(args, "-log-dir", logDir)
		}
		cmd := exec.Command(runBin, append(args, scriptPath)...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("sbrun %v failed: %v\n%s", extraArgs, err, out)
		}
	}

	// replayHistogram re-runs the histogram component offline against
	// the recording and returns the bytes it wrote.
	replayHistogram := func(t *testing.T, dir, logDir string) []byte {
		t.Helper()
		replayHist := filepath.Join(dir, "replay_hist.txt")
		scriptPath := filepath.Join(dir, "wf.sh") // written by liveRun
		cmd := exec.Command(replayBin,
			"-log-dir", logDir,
			"-stage", "histogram",
			"-args", fmt.Sprintf("m.fp mag 8 %s", replayHist),
			scriptPath)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("sbreplay failed: %v\n%s", err, out)
		}
		data, err := os.ReadFile(replayHist)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// one runs the full record-then-replay round trip for one backend
	// and returns (live histogram bytes, replayed histogram bytes).
	type result struct{ live, replayed []byte }
	results := map[string]result{}

	t.Run("inproc", func(t *testing.T) {
		dir := t.TempDir()
		hist := filepath.Join(dir, "hist.txt")
		logDir := filepath.Join(dir, "rec")
		liveRun(t, dir, hist, logDir, "-transport", "inproc")
		live, err := os.ReadFile(hist)
		if err != nil {
			t.Fatal(err)
		}
		results["inproc"] = result{live, replayHistogram(t, dir, logDir)}
	})
	t.Run("tcp", func(t *testing.T) {
		dir := t.TempDir()
		hist := filepath.Join(dir, "hist.txt")
		logDir := filepath.Join(dir, "rec")
		runBrokerRecording(t, brokerBin, logDir, []string{"-addr", "127.0.0.1:0"}, func(addr string) {
			liveRun(t, dir, hist, "", "-transport", "tcp", "-broker", addr)
		})
		live, err := os.ReadFile(hist)
		if err != nil {
			t.Fatal(err)
		}
		results["tcp"] = result{live, replayHistogram(t, dir, logDir)}
	})
	t.Run("uds", func(t *testing.T) {
		if !haveUnixSockets(t) {
			t.Skip("platform cannot bind AF_UNIX sockets")
		}
		dir := t.TempDir()
		hist := filepath.Join(dir, "hist.txt")
		logDir := filepath.Join(dir, "rec")
		sockDir, err := os.MkdirTemp("", "sbuds")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(sockDir) })
		runBrokerRecording(t, brokerBin, logDir,
			[]string{"-transport", "uds", "-addr", filepath.Join(sockDir, "b.sock")}, func(addr string) {
				liveRun(t, dir, hist, "", "-transport", "uds", "-broker", addr)
			})
		live, err := os.ReadFile(hist)
		if err != nil {
			t.Fatal(err)
		}
		results["uds"] = result{live, replayHistogram(t, dir, logDir)}
	})
	t.Run("shm", func(t *testing.T) {
		if !haveUnixSockets(t) {
			t.Skip("platform cannot bind AF_UNIX sockets")
		}
		dir := t.TempDir()
		hist := filepath.Join(dir, "hist.txt")
		logDir := filepath.Join(dir, "rec")
		sockDir, err := os.MkdirTemp("", "sbshm")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(sockDir) })
		runBrokerRecording(t, brokerBin, logDir,
			[]string{"-transport", "shm", "-addr", filepath.Join(sockDir, "b.sock")}, func(addr string) {
				liveRun(t, dir, hist, "", "-transport", "shm", "-broker", addr)
			})
		live, err := os.ReadFile(hist)
		if err != nil {
			t.Fatal(err)
		}
		results["shm"] = result{live, replayHistogram(t, dir, logDir)}
	})

	// Every backend's replay must equal its own live run, and all
	// replays must agree with each other.
	var ref []byte
	for kind, r := range results {
		if len(r.live) == 0 {
			t.Fatalf("%s: empty live histogram", kind)
		}
		if string(r.live) != string(r.replayed) {
			t.Errorf("%s: offline replay differs from live run\n--- live ---\n%s\n--- replay ---\n%s",
				kind, r.live, r.replayed)
		}
		if ref == nil {
			ref = r.replayed
		} else if string(ref) != string(r.replayed) {
			t.Errorf("%s: replay bytes differ from other transports", kind)
		}
	}
}
