// Package tracetest asserts workflow properties from trace spans alone.
// It is the verification half of the observability layer: an e2e test
// runs a pipeline with a Tracer attached, then states delivery and
// lifecycle guarantees — exactly-once publishes, retire-after-last-fetch,
// resume-at-the-right-step — as span predicates instead of re-deriving
// them from component outputs.
//
// Ordering is emit order (the tracer's ring position), never timestamps
// (the wall clock can repeat under coarse clocks) and never span IDs
// (composite spans pre-allocate IDs, so a parent's ID is smaller than
// its children's even though it is emitted after them).
package tracetest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// TB is the subset of testing.TB the assertions need. Every assertion
// returns immediately after Fatalf, so a recording fake works in tests
// of the harness itself.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Pred is a span predicate; assertions and Where combine them with AND.
type Pred func(obs.Span) bool

// OfKind matches spans of kind k.
func OfKind(k obs.Kind) Pred { return func(s obs.Span) bool { return s.Kind == k } }

// OnStream matches spans on the named stream.
func OnStream(name string) Pred { return func(s obs.Span) bool { return s.Stream == name } }

// AtStep matches spans for one timestep.
func AtStep(step int) Pred { return func(s obs.Span) bool { return s.Step == step } }

// ByRank matches spans emitted on behalf of one rank.
func ByRank(rank int) Pred { return func(s obs.Span) bool { return s.Rank == rank } }

// FromPeer matches spans whose peer (e.g. a fetch's writer rank) is p.
func FromPeer(p int) Pred { return func(s obs.Span) bool { return s.Peer == p } }

// InEpoch matches spans from one restart epoch.
func InEpoch(e int) Pred { return func(s obs.Span) bool { return s.Epoch == e } }

// WithGen matches spans carrying one pooled-buffer generation.
func WithGen(g uint64) Pred { return func(s obs.Span) bool { return s.Gen == g } }

// Failed matches spans that recorded an error.
func Failed() Pred { return func(s obs.Span) bool { return s.Err != "" } }

// And combines predicates.
func And(preds ...Pred) Pred {
	return func(s obs.Span) bool { return match(s, preds) }
}

func match(s obs.Span, preds []Pred) bool {
	for _, p := range preds {
		if !p(s) {
			return false
		}
	}
	return true
}

// Spans is a span sequence in emit order.
type Spans []obs.Span

// FromTracer snapshots a tracer's ring, oldest first.
func FromTracer(tr *obs.Tracer) Spans { return tr.Spans() }

// Load reads JSONL spans (the sbrun -trace format).
func Load(r io.Reader) (Spans, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out Spans
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var s obs.Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			return nil, fmt.Errorf("tracetest: line %d: %w", len(out)+1, err)
		}
		out = append(out, s)
	}
	return out, sc.Err()
}

// Where returns the subsequence matching every predicate, in emit order.
func (sp Spans) Where(preds ...Pred) Spans {
	var out Spans
	for _, s := range sp {
		if match(s, preds) {
			out = append(out, s)
		}
	}
	return out
}

// Steps returns the Step of each span, in emit order.
func (sp Spans) Steps() []int {
	out := make([]int, len(sp))
	for i, s := range sp {
		out[i] = s.Step
	}
	return out
}

// byID indexes spans by ID (0 IDs — absent — are skipped).
func (sp Spans) byID() map[obs.SpanID]obs.Span {
	m := make(map[obs.SpanID]obs.Span, len(sp))
	for _, s := range sp {
		if s.ID != 0 {
			m[s.ID] = s
		}
	}
	return m
}

// ExpectSpan asserts at least one span matches and returns the first.
func ExpectSpan(t TB, sp Spans, preds ...Pred) obs.Span {
	t.Helper()
	for _, s := range sp {
		if match(s, preds) {
			return s
		}
	}
	t.Fatalf("tracetest: no span matches (of %d total)", len(sp))
	return obs.Span{}
}

// ExpectNone asserts no span matches.
func ExpectNone(t TB, sp Spans, preds ...Pred) {
	t.Helper()
	for i, s := range sp {
		if match(s, preds) {
			t.Fatalf("tracetest: span %d matches unexpectedly: %+v", i, s)
			return
		}
	}
}

// ExpectCount asserts exactly want spans match.
func ExpectCount(t TB, sp Spans, want int, preds ...Pred) {
	t.Helper()
	if got := len(sp.Where(preds...)); got != want {
		t.Fatalf("tracetest: %d spans match, want %d", got, want)
	}
}

// StepKey keys a span by (stream, step).
func StepKey(s obs.Span) string { return fmt.Sprintf("%s/%d", s.Stream, s.Step) }

// StepRankKey keys a span by (stream, step, rank).
func StepRankKey(s obs.Span) string { return fmt.Sprintf("%s/%d/%d", s.Stream, s.Step, s.Rank) }

// ExactlyOncePer asserts every matching span's key occurs exactly once —
// the exactly-once-delivery matcher. Returns the keyed spans.
func ExactlyOncePer(t TB, sp Spans, key func(obs.Span) string, preds ...Pred) map[string]obs.Span {
	t.Helper()
	seen := map[string]obs.Span{}
	for _, s := range sp.Where(preds...) {
		k := key(s)
		if dup, ok := seen[k]; ok {
			t.Fatalf("tracetest: key %q seen twice:\n first %+v\nsecond %+v", k, dup, s)
			return nil
		}
		seen[k] = s
	}
	return seen
}

// ExpectConsecutiveSteps asserts the matching spans' steps are exactly
// from, from+1, … in emit order — no gap, no duplicate, no reorder. This
// is the resume proof: a supervised restart that re-publishes or skips a
// step breaks the sequence. Returns the step after the last (from if
// nothing matched).
func ExpectConsecutiveSteps(t TB, sp Spans, from int, preds ...Pred) int {
	t.Helper()
	next := from
	for i, s := range sp {
		if !match(s, preds) {
			continue
		}
		if s.Step != next {
			t.Fatalf("tracetest: span %d has step %d, want %d (gap, duplicate, or reorder): %+v", i, s.Step, next, s)
			return next
		}
		next++
	}
	return next
}

// ExpectAllBefore asserts both groups are non-empty and every span
// matching earlier precedes (in emit order) every span matching later —
// e.g. every fetch of a step before its retirement.
func ExpectAllBefore(t TB, sp Spans, earlier, later Pred) {
	t.Helper()
	lastEarlier, firstLater := -1, -1
	for i, s := range sp {
		if earlier(s) {
			lastEarlier = i
		}
		if later(s) && firstLater < 0 {
			firstLater = i
		}
	}
	if lastEarlier < 0 || firstLater < 0 {
		t.Fatalf("tracetest: ordering groups empty (earlier at %d, later at %d)", lastEarlier, firstLater)
		return
	}
	if lastEarlier > firstLater {
		t.Fatalf("tracetest: span %d (earlier group) emitted after span %d (later group)", lastEarlier, firstLater)
	}
}

// ExpectParented asserts every span matching child carries a non-zero
// Parent that resolves (anywhere in the trace) to a span matching
// parent — the causality matcher. Returns how many children it checked.
func ExpectParented(t TB, sp Spans, child Pred, parent Pred) int {
	t.Helper()
	ids := sp.byID()
	n := 0
	for i, s := range sp {
		if !child(s) {
			continue
		}
		n++
		if s.Parent == 0 {
			t.Fatalf("tracetest: span %d has no parent: %+v", i, s)
			return n
		}
		p, ok := ids[s.Parent]
		if !ok {
			t.Fatalf("tracetest: span %d's parent %d is not in the trace: %+v", i, s.Parent, s)
			return n
		}
		if !parent(p) {
			t.Fatalf("tracetest: span %d's parent does not match: child %+v parent %+v", i, s, p)
			return n
		}
	}
	if n == 0 {
		t.Fatalf("tracetest: no child spans to check")
	}
	return n
}

// Summary renders a per-kind span count, for failure messages.
func Summary(sp Spans) string {
	counts := map[obs.Kind]int{}
	for _, s := range sp {
		counts[s.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "%s=%d ", k, counts[obs.Kind(k)])
	}
	return strings.TrimSpace(b.String())
}
