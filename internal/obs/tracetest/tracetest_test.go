package tracetest

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// fakeTB records Fatalf calls; the assertions return right after
// Fatalf, so recording (rather than aborting) is sound.
type fakeTB struct {
	failed bool
	msg    string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Fatalf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
}

func pipelineTrace() Spans {
	tr := obs.NewTracer(64)
	for step := 0; step < 3; step++ {
		stage := tr.NextID()
		pub := tr.Emit(obs.Span{Kind: obs.KindWriterPublish, Parent: stage,
			Stream: "a.fp", Step: step, Rank: 0, Peer: -1, Bytes: 100, Gen: uint64(10 + step)})
		tr.Emit(obs.Span{Kind: obs.KindBrokerStep, Stream: "a.fp", Step: step, Rank: -1, Peer: -1})
		tr.Emit(obs.Span{Kind: obs.KindReaderFetch, Parent: pub,
			Stream: "a.fp", Step: step, Rank: 0, Peer: 0, Bytes: 100, Gen: uint64(10 + step)})
		tr.Emit(obs.Span{ID: stage, Kind: obs.KindStageStep, Stream: "a.fp", Step: step, Rank: 0, Peer: -1})
		tr.Emit(obs.Span{Kind: obs.KindBrokerRetire, Stream: "a.fp", Step: step, Rank: -1, Peer: -1, Gen: uint64(10 + step)})
	}
	return FromTracer(tr)
}

func TestExpectSpanFindsAndFails(t *testing.T) {
	sp := pipelineTrace()
	got := ExpectSpan(t, sp, OfKind(obs.KindWriterPublish), AtStep(1))
	if got.Gen != 11 {
		t.Fatalf("wrong span: %+v", got)
	}
	ft := &fakeTB{}
	ExpectSpan(ft, sp, OfKind(obs.KindStageRestart))
	if !ft.failed {
		t.Fatal("missing span not reported")
	}
}

func TestExpectNoneAndCount(t *testing.T) {
	sp := pipelineTrace()
	ExpectNone(t, sp, Failed())
	ExpectCount(t, sp, 3, OfKind(obs.KindBrokerRetire))
	ft := &fakeTB{}
	ExpectCount(ft, sp, 2, OfKind(obs.KindBrokerRetire))
	if !ft.failed {
		t.Fatal("wrong count not reported")
	}
}

func TestExactlyOncePer(t *testing.T) {
	sp := pipelineTrace()
	keyed := ExactlyOncePer(t, sp, StepRankKey, OfKind(obs.KindWriterPublish), OnStream("a.fp"))
	if len(keyed) != 3 {
		t.Fatalf("keyed %d publishes, want 3", len(keyed))
	}
	// A duplicated publish must be caught.
	dup := append(Spans{}, sp...)
	dup = append(dup, sp.Where(OfKind(obs.KindWriterPublish), AtStep(0))...)
	ft := &fakeTB{}
	ExactlyOncePer(ft, dup, StepRankKey, OfKind(obs.KindWriterPublish))
	if !ft.failed || !strings.Contains(ft.msg, "a.fp/0/0") {
		t.Fatalf("duplicate publish not reported: %q", ft.msg)
	}
}

func TestExpectConsecutiveSteps(t *testing.T) {
	sp := pipelineTrace()
	if next := ExpectConsecutiveSteps(t, sp, 0, OfKind(obs.KindWriterPublish)); next != 3 {
		t.Fatalf("next = %d, want 3", next)
	}
	// A gap (step 1 missing) must be caught.
	gap := sp.Where(func(s obs.Span) bool {
		return !(s.Kind == obs.KindWriterPublish && s.Step == 1)
	})
	ft := &fakeTB{}
	ExpectConsecutiveSteps(ft, gap, 0, OfKind(obs.KindWriterPublish))
	if !ft.failed {
		t.Fatal("gap not reported")
	}
}

func TestExpectAllBefore(t *testing.T) {
	sp := pipelineTrace()
	for step := 0; step < 3; step++ {
		ExpectAllBefore(t, sp,
			And(OfKind(obs.KindReaderFetch), AtStep(step)),
			And(OfKind(obs.KindBrokerRetire), AtStep(step)))
	}
	// Reversed order must be caught.
	ft := &fakeTB{}
	ExpectAllBefore(ft, sp,
		And(OfKind(obs.KindBrokerRetire), AtStep(0)),
		And(OfKind(obs.KindReaderFetch), AtStep(0)))
	if !ft.failed {
		t.Fatal("reversed order not reported")
	}
	// Empty groups must be caught, not vacuously pass.
	ft = &fakeTB{}
	ExpectAllBefore(ft, sp, OfKind(obs.KindStageRestart), OfKind(obs.KindBrokerRetire))
	if !ft.failed {
		t.Fatal("empty group not reported")
	}
}

func TestExpectParented(t *testing.T) {
	sp := pipelineTrace()
	// Publishes are children of stage.step spans, even though the parent
	// is emitted after the child (pre-allocated ID).
	if n := ExpectParented(t, sp, OfKind(obs.KindWriterPublish), OfKind(obs.KindStageStep)); n != 3 {
		t.Fatalf("checked %d children, want 3", n)
	}
	ExpectParented(t, sp, OfKind(obs.KindReaderFetch), OfKind(obs.KindWriterPublish))
	ft := &fakeTB{}
	ExpectParented(ft, sp, OfKind(obs.KindBrokerStep), OfKind(obs.KindStageStep))
	if !ft.failed {
		t.Fatal("orphan child not reported")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	sp := pipelineTrace()
	tr := obs.NewTracer(64)
	for _, s := range sp {
		tr.Emit(s)
	}
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(sp) {
		t.Fatalf("loaded %d spans, want %d", len(loaded), len(sp))
	}
	ExpectCount(t, loaded, 3, OfKind(obs.KindWriterPublish))
}

func TestSummary(t *testing.T) {
	s := Summary(pipelineTrace())
	for _, want := range []string{"writer.publish=3", "broker.retire=3", "stage.step=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}
