package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestNilRegistryAndInstrumentsAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	r.RegisterFunc("f", func() int64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(10)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments retained values")
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity not stable")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("gauge identity not stable")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Fatal("histogram identity not stable")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("fabric.steps").Add(12)
	r.Gauge("kernel.active").Set(-3)
	r.RegisterFunc("pool.gets", func() int64 { return 99 })
	h := r.Histogram("step_ns")
	h.Observe(100)
	h.Observe(300)
	snap := r.Snapshot()
	want := map[string]int64{
		"fabric.steps":  12,
		"kernel.active": -3,
		"pool.gets":     99,
		"step_ns.count": 2,
		"step_ns.sum":   400,
		"step_ns.min":   100,
		"step_ns.max":   300,
		"step_ns.mean":  200,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %d, want %d", k, snap[k], v)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	const G, N = 8, 1000
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < N; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != G*N {
		t.Fatalf("count = %d, want %d", s.Count, G*N)
	}
	if s.Min != 0 || s.Max != N-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, N-1)
	}
	wantSum := int64(G) * int64(N) * int64(N-1) / 2
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if q := h.Quantile(0.99); q < s.Max/2 {
		t.Fatalf("p99 bound %d implausibly small (max %d)", q, s.Max)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := newHistogram()
	h.Observe(-5)
	s := h.Snapshot()
	if s.Min != 0 || s.Sum != 0 || s.Count != 1 {
		t.Fatalf("negative sample not clamped: %+v", s)
	}
}

func TestHandlerServesSortedJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", rec.Body.String(), err)
	}
	if got["a"] != 1 || got["b"] != 2 {
		t.Fatalf("snapshot = %v", got)
	}
	body := rec.Body.String()
	if ia, ib := indexOf(body, `"a"`), indexOf(body, `"b"`); ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("keys not sorted deterministically:\n%s", body)
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
