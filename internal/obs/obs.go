// Package obs is the observability layer of the stream fabric:
// step-level tracing (this file) and a metrics registry (registry.go).
// It is dependency-free — nothing in the repository sits below it — so
// every layer a timestep crosses can emit into it without import
// cycles: the adios writer, the flexpath broker, the reader fan-out,
// the kernels, and the workflow supervisor.
//
// The design follows the tracing-first discipline of the related-work
// stream processors (Flink-style latency markers, Flexpath's own
// instrumentation in Dayal et al.): every hop of a timestep becomes a
// Span carrying the (stream, step, rank) identity plus whatever the hop
// knows — byte counts, pooled-buffer generation, restart epoch — and
// causality is recorded twice, explicitly via Parent IDs propagated
// through contexts, and implicitly via emit order (spans land in the
// ring in the order the instrumented code ran, so "A happened before B"
// is a statement about ring positions, immune to wall-clock skew).
//
// Everything is nil-safe and zero-cost when disabled: a nil *Tracer
// emits nothing, takes no timestamps, and allocates nothing, so the
// hot path pays only a pointer test when tracing is off.
package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one emitted span within one Tracer. IDs are
// allocated from an atomic counter, so they are unique and dense but —
// because composite spans pre-allocate their ID before their children
// emit — not emit-ordered. Use ring position for ordering.
type SpanID uint64

// Kind classifies a span by the hop it instruments.
type Kind string

// The span taxonomy, in the order a timestep crosses the fabric.
const (
	// KindWriterPublish is one writer rank's block accepted by the
	// broker (the transport end of adios EndStep). Bytes counts
	// meta+payload; Gen is the payload buffer's pool generation.
	KindWriterPublish Kind = "writer.publish"
	// KindBrokerStep marks a timestep fully published: every writer
	// rank's block has arrived and the step became visible to readers.
	KindBrokerStep Kind = "broker.step"
	// KindBrokerRetire marks a timestep retired: every reader rank
	// released (or departed) and the pooled storage recycled. Gen is the
	// writer-rank-0 payload generation, matching its fetch spans.
	KindBrokerRetire Kind = "broker.retire"
	// KindReaderMeta is one reader rank's StepMeta served (the step's
	// self-describing metadata, all writer ranks' blobs).
	KindReaderMeta Kind = "reader.step_meta"
	// KindReaderFetch is one block payload served to one reader rank;
	// Peer is the writer rank whose block was fetched, Gen the payload
	// buffer's pool generation.
	KindReaderFetch Kind = "reader.fetch"
	// KindReaderRelease is one reader rank releasing a step.
	KindReaderRelease Kind = "reader.release"
	// KindKernelTransform times one rank's kernel Transform call.
	KindKernelTransform Kind = "kernel.transform"
	// KindStageStep is one rank's full step through a map-style
	// component: read, transform, republish, release. Parent of the
	// step's transport and kernel spans.
	KindStageStep Kind = "stage.step"
	// KindStageAttempt is one supervised launch of a workflow stage;
	// Epoch is the attempt number (0 = first launch).
	KindStageAttempt Kind = "stage.attempt"
	// KindStageRestart marks the supervisor scheduling a restart; Epoch
	// is the attempt about to launch.
	KindStageRestart Kind = "stage.restart"
	// KindStageRescale marks the supervisor re-scaling a stage's rank
	// count at a step boundary: Rank carries the old rank count, Peer
	// the new one, Note the component name, and Epoch the attempt that
	// relaunches at the new size.
	KindStageRescale Kind = "stage.rescale"
	// KindLogAppend is one timestep framed onto the durable stream log
	// by the broker's write-behind appender; Bytes counts the record.
	KindLogAppend Kind = "log.append"
	// KindLogReplay is one historical step served to a catch-up reader
	// from segment reads (as opposed to the live queue).
	KindLogReplay Kind = "log.replay"
	// KindReplayLive is one step served to a catch-up reader from the
	// live in-memory queue — the post-handoff half of a replay session.
	// For any one replay reader each step appears in exactly one
	// log.replay or replay.live span: the exactly-once handoff proof.
	KindReplayLive Kind = "replay.live"
	// KindDiffStep is one step compared between two replayed component
	// variants; Bytes carries the compared byte volume and Err the first
	// divergence, when any.
	KindDiffStep Kind = "diff.step"
	// KindBrokerRecover is one stream's state rebuilt from the durable
	// log after a broker restart; Step is the recovered head, Bytes the
	// payload bytes restored into the queue.
	KindBrokerRecover Kind = "broker.recover"
)

// Span is one observed hop of one timestep through the fabric. Fields
// that do not apply to a kind are zero; Rank and Peer use -1 for "not
// applicable" so rank 0 stays distinguishable.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Kind   Kind   `json:"kind"`
	Stream string `json:"stream,omitempty"`
	Step   int    `json:"step"`
	// Rank is the emitting side's rank within its group: the writer rank
	// for publish spans, the reader rank for meta/fetch/release spans,
	// the component rank for kernel and stage-step spans.
	Rank int `json:"rank"`
	// Peer is the other side's rank where a span crosses groups: the
	// writer rank whose block a reader.fetch span served.
	Peer  int   `json:"peer"`
	Bytes int64 `json:"bytes,omitempty"`
	// Gen is the pool generation of the payload buffer involved, tying
	// fetch and retire spans to one physical buffer incarnation.
	Gen uint64 `json:"gen,omitempty"`
	// Epoch is the supervised-restart epoch (stage attempt) the span was
	// emitted under.
	Epoch int    `json:"epoch,omitempty"`
	Note  string `json:"note,omitempty"`
	// Start and End are wall-clock UnixNano timestamps. Point events
	// carry Start == End. For ordering proofs prefer ring position.
	Start int64  `json:"start"`
	End   int64  `json:"end"`
	Err   string `json:"err,omitempty"`
}

// DefaultRingSize is the span capacity of a Tracer created with
// NewTracer(0) — large enough for thousands of timesteps across a
// multi-stage workflow, small enough to stay a few MiB.
const DefaultRingSize = 1 << 16

// Tracer collects spans into a fixed-size ring buffer. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops), so
// instrumented code holds a possibly-nil *Tracer and never branches
// beyond the receiver check the calls themselves perform.
type Tracer struct {
	ids     atomic.Uint64
	dropped atomic.Int64

	mu   sync.Mutex
	ring []Span
	next int  // ring index the next span lands in
	wrap bool // ring has wrapped at least once
}

// NewTracer returns a tracer holding up to capacity spans; capacity <= 0
// selects DefaultRingSize. Once full, the oldest spans are overwritten
// and counted in Dropped.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// Enabled reports whether spans are being collected; false on nil.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the current wall clock in UnixNano, or 0 on a nil tracer
// — so disabled paths never touch the clock.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// NextID pre-allocates a span ID, letting a composite span (a stage
// step) hand its identity to children emitted before it seals itself.
// Returns 0 on a nil tracer.
func (t *Tracer) NextID() SpanID {
	if t == nil {
		return 0
	}
	return SpanID(t.ids.Add(1))
}

// Emit records a span and returns its ID. A zero s.ID is assigned from
// the counter; a pre-allocated ID (NextID) is kept. Zero timestamps are
// stamped with the current time, so point events can be emitted as
// bare Span{Kind: ..., ...} literals. Nil-safe: returns 0.
func (t *Tracer) Emit(s Span) SpanID {
	if t == nil {
		return 0
	}
	if s.ID == 0 {
		s.ID = SpanID(t.ids.Add(1))
	}
	if s.End == 0 {
		s.End = time.Now().UnixNano()
	}
	if s.Start == 0 {
		s.Start = s.End
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.wrap = true
		t.dropped.Add(1)
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.mu.Unlock()
	return s.ID
}

// Len reports how many spans are currently buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped reports how many spans were overwritten after the ring
// filled. A trace-assertion harness should require this to be zero
// before reasoning about completeness.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans returns a copy of the buffered spans in emit order (oldest
// first). Nil-safe: returns nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if t.wrap {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// WriteJSONL writes the buffered spans to w, one JSON object per line,
// in emit order — the export format behind `sbrun -trace out.jsonl`.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parentKey carries a parent SpanID through a context.
type parentKey struct{}

// WithParent returns a context carrying id as the parent for spans
// emitted downstream of it (the broker reads it on publish and fetch).
// Call only when tracing is enabled — it allocates.
func WithParent(ctx context.Context, id SpanID) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, parentKey{}, id)
}

// ParentFrom extracts the parent span ID from ctx, or 0.
func ParentFrom(ctx context.Context) SpanID {
	if ctx == nil {
		return 0
	}
	if id, ok := ctx.Value(parentKey{}).(SpanID); ok {
		return id
	}
	return 0
}
