package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Now() != 0 {
		t.Fatal("nil tracer touched the clock")
	}
	if tr.NextID() != 0 {
		t.Fatal("nil tracer allocated an ID")
	}
	if id := tr.Emit(Span{Kind: KindBrokerStep}); id != 0 {
		t.Fatalf("nil tracer emitted span %d", id)
	}
	if tr.Spans() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer holds spans")
	}
}

func TestTracerEmitOrderAndIDs(t *testing.T) {
	tr := NewTracer(16)
	pre := tr.NextID()
	a := tr.Emit(Span{Kind: KindWriterPublish, Stream: "s", Step: 0, Rank: 0})
	b := tr.Emit(Span{Kind: KindBrokerStep, Stream: "s", Step: 0, Parent: a})
	tr.Emit(Span{ID: pre, Kind: KindStageStep, Stream: "s", Step: 0})
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Kind != KindWriterPublish || spans[1].Kind != KindBrokerStep || spans[2].Kind != KindStageStep {
		t.Fatalf("emit order not preserved: %v %v %v", spans[0].Kind, spans[1].Kind, spans[2].Kind)
	}
	if spans[1].Parent != a {
		t.Fatalf("parent lost: %d want %d", spans[1].Parent, a)
	}
	if spans[2].ID != pre {
		t.Fatalf("pre-allocated ID not kept: %d want %d", spans[2].ID, pre)
	}
	if a == b || a == pre || b == pre {
		t.Fatalf("IDs not unique: %d %d %d", a, b, pre)
	}
	for _, s := range spans {
		if s.Start == 0 || s.End == 0 || s.End < s.Start {
			t.Fatalf("bad timestamps: %+v", s)
		}
	}
}

func TestTracerRingWrapKeepsNewest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Span{Kind: KindBrokerStep, Step: i})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Step != 6+i {
			t.Fatalf("span %d has step %d, want %d (oldest-first after wrap)", i, s.Step, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(1 << 12)
	var wg sync.WaitGroup
	const G, N = 8, 100
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				tr.Emit(Span{Kind: KindReaderFetch, Rank: g, Step: i})
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Len(); got != G*N {
		t.Fatalf("len = %d, want %d", got, G*N)
	}
	seen := map[SpanID]bool{}
	for _, s := range tr.Spans() {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Span{Kind: KindWriterPublish, Stream: "dump.fp", Step: 2, Rank: 1, Bytes: 640, Gen: 7})
	tr.Emit(Span{Kind: KindBrokerRetire, Stream: "dump.fp", Step: 2, Rank: -1, Peer: -1})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var got []Span
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		got = append(got, s)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d lines, want 2", len(got))
	}
	if got[0].Stream != "dump.fp" || got[0].Bytes != 640 || got[0].Gen != 7 {
		t.Fatalf("span 0 mangled: %+v", got[0])
	}
	if got[1].Kind != KindBrokerRetire || got[1].Rank != -1 {
		t.Fatalf("span 1 mangled: %+v", got[1])
	}
}

func TestParentPropagation(t *testing.T) {
	if ParentFrom(nil) != 0 || ParentFrom(context.Background()) != 0 {
		t.Fatal("missing parent should be 0")
	}
	ctx := WithParent(context.Background(), 42)
	if got := ParentFrom(ctx); got != 42 {
		t.Fatalf("ParentFrom = %d, want 42", got)
	}
}

func TestSpanFor1000Steps(t *testing.T) {
	// A 3-stage, 500-step run emits a few thousand spans; the default
	// ring must hold them without drops.
	tr := NewTracer(0)
	for i := 0; i < 5000; i++ {
		tr.Emit(Span{Kind: KindBrokerStep, Step: i})
	}
	if tr.Dropped() != 0 {
		t.Fatalf("default ring dropped %d spans over 5000 emits", tr.Dropped())
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Emit(Span{Kind: KindReaderFetch})
		}
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	tr := NewTracer(1 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Span{Kind: KindReaderFetch, Stream: "s", Step: i})
	}
}

func ExampleTracer_WriteJSONL() {
	tr := NewTracer(4)
	tr.Emit(Span{Kind: KindBrokerStep, Stream: "x.fp", Step: 0, Rank: -1, Peer: -1, Start: 1, End: 1})
	var buf bytes.Buffer
	tr.WriteJSONL(&buf)
	fmt.Print(buf.String())
	// Output: {"id":1,"kind":"broker.step","stream":"x.fp","step":0,"rank":-1,"peer":-1,"start":1,"end":1}
}
