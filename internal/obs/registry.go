package obs

import (
	"encoding/json"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the observability layer: a registry
// of named atomic counters, gauges, and histograms, exposed as an
// expvar-style snapshot and an HTTP handler (sbbroker -metrics-addr).
// Producers resolve their instruments ONCE — at attach, bind, or init
// time — and then pay a single atomic op per update, so instrumented
// hot paths carry no map lookups and no allocations.

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (use a negative n on the way out of a
// region to track occupancy). Nil-safe.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value; 0 on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates a distribution of non-negative int64 samples in
// power-of-two buckets (bucket i counts samples whose bit length is i,
// i.e. values in [2^(i-1), 2^i)). Everything is atomic: Observe is a
// handful of lock-free ops, cheap enough for per-step latencies.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // stored as math.MaxInt64 until the first sample
	max     atomic.Int64
	buckets [65]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one sample; negative samples clamp to 0. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// HistogramSnapshot is the exported view of a Histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	Mean  int64 `json:"mean"`
}

// Snapshot returns the current aggregate view.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Mean = s.Sum / s.Count
	}
	return s
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) from
// the power-of-two buckets — coarse, but alloc-free and good enough to
// spot a latency cliff.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max.Load()
}

// Registry is a namespace of instruments. Lookups get-or-create under a
// mutex; all instruments live for the registry's lifetime. A nil
// *Registry is a valid "disabled" registry: lookups return nil
// instruments, whose methods are no-ops.
type Registry struct {
	mu    sync.Mutex
	cs    map[string]*Counter
	gs    map[string]*Gauge
	hs    map[string]*Histogram
	funcs map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cs:    map[string]*Counter{},
		gs:    map[string]*Gauge{},
		hs:    map[string]*Histogram{},
		funcs: map[string]func() int64{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Process-scoped producers
// (the buffer pool, the kernel worker pool) publish here; sbrun and
// sbbroker snapshot it.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.cs[name]
	if !ok {
		c = &Counter{}
		r.cs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gs[name]
	if !ok {
		g = &Gauge{}
		r.gs[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hs[name]
	if !ok {
		h = newHistogram()
		r.hs[name] = h
	}
	return h
}

// RegisterFunc publishes a computed value under name — the expvar.Func
// pattern, used to bridge pre-existing atomic counters (pool stats)
// into the registry without double bookkeeping. Nil-safe.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot returns every scalar instrument's current value keyed by
// name. Histograms expand to name.count/.sum/.min/.max/.mean/.p99.
// Nil-safe: returns an empty map.
func (r *Registry) Snapshot() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	cs := make(map[string]*Counter, len(r.cs))
	for k, v := range r.cs {
		cs[k] = v
	}
	gs := make(map[string]*Gauge, len(r.gs))
	for k, v := range r.gs {
		gs[k] = v
	}
	hs := make(map[string]*Histogram, len(r.hs))
	for k, v := range r.hs {
		hs[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.Unlock()
	for k, c := range cs {
		out[k] = c.Value()
	}
	for k, g := range gs {
		out[k] = g.Value()
	}
	for k, h := range hs {
		s := h.Snapshot()
		out[k+".count"] = s.Count
		out[k+".sum"] = s.Sum
		out[k+".min"] = s.Min
		out[k+".max"] = s.Max
		out[k+".mean"] = s.Mean
		out[k+".p99"] = h.Quantile(0.99)
	}
	for k, fn := range funcs {
		out[k] = fn()
	}
	return out
}

// Handler returns an HTTP handler serving the snapshot as a JSON object
// with deterministically ordered keys — the sbbroker -metrics-addr
// debug endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snap := r.Snapshot()
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{\n"))
		for i, k := range keys {
			kb, _ := json.Marshal(k)
			vb, _ := json.Marshal(snap[k])
			w.Write(kb)
			w.Write([]byte(": "))
			w.Write(vb)
			if i < len(keys)-1 {
				w.Write([]byte(","))
			}
			w.Write([]byte("\n"))
		}
		w.Write([]byte("}\n"))
	})
}
