package mpi

import (
	"testing"
)

func BenchmarkSendRecvPingPong(b *testing.B) {
	b.ReportAllocs()
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				if err := c.Send(1, 0, i); err != nil {
					return err
				}
				if _, _, err := RecvT[int](c, 1, 1); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := RecvT[int](c, 0, 0); err != nil {
				return err
			}
			if err := c.Send(0, 1, i); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBarrier8(b *testing.B) {
	b.ReportAllocs()
	err := Run(8, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllreduce8(b *testing.B) {
	b.ReportAllocs()
	err := Run(8, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if _, err := Allreduce(c, float64(c.Rank()), Sum[float64]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllreduceFloat64s8x1024(b *testing.B) {
	b.ReportAllocs()
	buf := make([]float64, 1024)
	b.SetBytes(int64(len(buf) * 8))
	err := Run(8, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if _, err := AllreduceFloat64s(c, buf, Sum[float64]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
