// Package mpi is an in-process message-passing runtime that stands in for
// MPI in this reproduction. Each SmartBlock component in the paper is an
// MPI executable whose processes "belong to the same MPI communicator
// once the component is launched" (§IV); here each rank is a goroutine
// and a communicator is a set of shared mailboxes.
//
// The subset implemented is the subset in situ components need: SPMD
// launch (Run), rank/size discovery, tagged point-to-point Send/Recv,
// the synchronizing collectives (Barrier, Bcast, Gather, Allgather,
// Scatter, Reduce, Allreduce, Alltoall), and communicator Split.
//
// Semantics follow MPI where it matters to callers:
//
//   - Sends are eager and buffered: Send never blocks and messages from
//     one sender to one receiver with one tag arrive in order.
//   - Recv blocks until a matching (source, tag) message arrives, or the
//     world's context is cancelled (rank failure / shutdown), in which
//     case it returns an error rather than deadlocking.
//   - Collectives must be called by every rank of the communicator in the
//     same order; each call is internally sequence-numbered so back-to-back
//     collectives cannot cross-talk.
//
// When any rank's function returns a non-nil error the world context is
// cancelled, unblocking every other rank that is stuck in Recv — the
// moral equivalent of MPI_Abort, and the hook the failure-injection tests
// use.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// AnyTag matches messages with any tag in Recv.
const AnyTag = -1 << 30

// message is one point-to-point payload in flight.
type message struct {
	src, tag int
	payload  any
}

// mailbox is a rank's unordered-match message store: Recv scans for the
// first message matching (src, tag) in arrival order.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// take removes and returns the first message matching src/tag. done
// reports whether the world has been cancelled; it is re-checked on every
// wakeup so cancellation cannot be lost.
func (m *mailbox) take(src, tag int, done <-chan struct{}) (message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.queue {
			if (src == AnySource || msg.src == src) && (tag == AnyTag || msg.tag == tag) {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg, nil
			}
		}
		select {
		case <-done:
			return message{}, ErrAborted
		default:
		}
		m.cond.Wait()
	}
}

// ErrAborted is returned by blocked operations when the world shuts down
// because some rank failed or the context was cancelled.
var ErrAborted = errors.New("mpi: world aborted")

// world is the shared state behind all communicators spawned by one Run.
type world struct {
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	groups   map[string]*group // split registry, keyed by parent/seq/color
	allBoxes []*mailbox        // every mailbox ever created, for cancel wakeups
}

func (w *world) abort() {
	w.cancel()
	w.mu.Lock()
	boxes := append([]*mailbox(nil), w.allBoxes...)
	w.mu.Unlock()
	for _, b := range boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

func (w *world) registerBoxes(boxes []*mailbox) {
	w.mu.Lock()
	w.allBoxes = append(w.allBoxes, boxes...)
	w.mu.Unlock()
}

// group is one communicator's shared state: its mailboxes and identity.
type group struct {
	id    string
	w     *world
	boxes []*mailbox
}

func newGroup(w *world, id string, size int) *group {
	g := &group{id: id, w: w, boxes: make([]*mailbox, size)}
	for i := range g.boxes {
		g.boxes[i] = newMailbox()
	}
	w.registerBoxes(g.boxes)
	return g
}

// Comm is one rank's handle on a communicator. A Comm value is owned by a
// single rank goroutine and must not be shared between goroutines.
type Comm struct {
	g        *group
	rank     int
	collSeq  int // per-rank collective sequence number
	splitSeq int // per-rank split sequence number
}

// Rank returns this process's rank within the communicator, in [0,Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.g.boxes) }

// Context returns the world context; it is cancelled when any rank fails.
func (c *Comm) Context() context.Context { return c.g.w.ctx }

// RankError tags an error with the rank that produced it.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }
func (e *RankError) Unwrap() error { return e.Err }

// Run launches size ranks, each running fn with its own Comm, and waits
// for all of them. If any rank returns an error the world is aborted
// (unblocking collective and Recv calls on other ranks) and Run returns
// the first error observed, wrapped with its rank.
func Run(size int, fn func(*Comm) error) error {
	return RunCtx(context.Background(), size, fn)
}

// RunCtx is Run with an external context; cancelling it aborts the world.
func RunCtx(ctx context.Context, size int, fn func(*Comm) error) error {
	if size <= 0 {
		return fmt.Errorf("mpi: world size must be positive, got %d", size)
	}
	wctx, cancel := context.WithCancel(ctx)
	w := &world{ctx: wctx, cancel: cancel, groups: make(map[string]*group)}
	defer cancel()
	if d := ctx.Done(); d != nil {
		go func() {
			<-wctx.Done()
			w.abort()
		}()
	}
	g := newGroup(w, "world", size)

	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = &RankError{Rank: rank, Err: fmt.Errorf("panic: %v", p)}
					w.abort()
				}
			}()
			if err := fn(&Comm{g: g, rank: rank}); err != nil {
				errs[rank] = &RankError{Rank: rank, Err: err}
				w.abort()
			}
		}(r)
	}
	wg.Wait()
	// Prefer the root cause over abort fallout: when rank N fails, the
	// other ranks unwind with ErrAborted/Canceled, and rank order must not
	// let that fallout mask the error that actually started the abort —
	// callers (the workflow supervisor) classify the returned error to
	// decide whether a restart can help.
	var fallout error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrAborted) || errors.Is(err, context.Canceled) {
			if fallout == nil {
				fallout = err
			}
			continue
		}
		return err
	}
	return fallout
}

// Send delivers payload to rank dst with the given tag. It never blocks
// (eager buffered delivery). Tags must be non-negative; negative tags are
// reserved for collectives.
func (c *Comm) Send(dst, tag int, payload any) error {
	if tag < 0 {
		return fmt.Errorf("mpi: user tags must be non-negative, got %d", tag)
	}
	return c.send(dst, tag, payload)
}

func (c *Comm) send(dst, tag int, payload any) error {
	if dst < 0 || dst >= c.Size() {
		return fmt.Errorf("mpi: send to rank %d outside communicator of size %d", dst, c.Size())
	}
	select {
	case <-c.g.w.ctx.Done():
		return ErrAborted
	default:
	}
	c.g.boxes[dst].put(message{src: c.rank, tag: tag, payload: payload})
	return nil
}

// Recv blocks until a message matching src (or AnySource) and tag (or
// AnyTag) arrives, returning its payload and actual source rank.
func (c *Comm) Recv(src, tag int) (payload any, from int, err error) {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		return nil, 0, fmt.Errorf("mpi: recv from rank %d outside communicator of size %d", src, c.Size())
	}
	msg, err := c.g.boxes[c.rank].take(src, tag, c.g.w.ctx.Done())
	if err != nil {
		return nil, 0, err
	}
	return msg.payload, msg.src, nil
}

// SendT and RecvT provide typed point-to-point transfer.

// SendT sends a value of type T to dst with the given tag.
func SendT[T any](c *Comm, dst, tag int, v T) error { return c.Send(dst, tag, v) }

// RecvT receives a value of type T; it errors if the matched message
// holds a different type, which indicates mismatched send/recv code.
func RecvT[T any](c *Comm, src, tag int) (T, int, error) {
	var zero T
	payload, from, err := c.Recv(src, tag)
	if err != nil {
		return zero, 0, err
	}
	v, ok := payload.(T)
	if !ok {
		return zero, from, fmt.Errorf("mpi: recv type mismatch: message from rank %d holds %T, want %T", from, payload, zero)
	}
	return v, from, nil
}
