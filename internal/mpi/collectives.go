package mpi

import (
	"fmt"
	"sort"
)

// nextCollTag returns the reserved negative tag for this rank's next
// collective. Because every rank calls collectives on a communicator in
// the same program order (an MPI requirement this runtime shares),
// sequence numbers agree across ranks and consecutive collectives cannot
// exchange each other's messages.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return -c.collSeq
}

// Barrier blocks until every rank of the communicator has entered it.
// Implemented as a gather to rank 0 followed by a release broadcast.
func (c *Comm) Barrier() error {
	tag := c.nextCollTag()
	if c.rank == 0 {
		for i := 1; i < c.Size(); i++ {
			if _, _, err := c.recvColl(AnySource, tag); err != nil {
				return err
			}
		}
		for i := 1; i < c.Size(); i++ {
			if err := c.send(i, tag, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.send(0, tag, nil); err != nil {
		return err
	}
	_, _, err := c.recvColl(0, tag)
	return err
}

func (c *Comm) recvColl(src, tag int) (any, int, error) {
	msg, err := c.g.boxes[c.rank].take(src, tag, c.g.w.ctx.Done())
	if err != nil {
		return nil, 0, err
	}
	return msg.payload, msg.src, nil
}

// Bcast distributes root's value to every rank; every rank (including
// root) receives the value root passed. Non-root ranks may pass the zero
// value.
func Bcast[T any](c *Comm, v T, root int) (T, error) {
	var zero T
	if root < 0 || root >= c.Size() {
		return zero, fmt.Errorf("mpi: bcast root %d outside communicator of size %d", root, c.Size())
	}
	tag := c.nextCollTag()
	if c.rank == root {
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			if err := c.send(i, tag, v); err != nil {
				return zero, err
			}
		}
		return v, nil
	}
	payload, _, err := c.recvColl(root, tag)
	if err != nil {
		return zero, err
	}
	got, ok := payload.(T)
	if !ok {
		return zero, fmt.Errorf("mpi: bcast type mismatch: %T, want %T", payload, zero)
	}
	return got, nil
}

// Gather collects one value from every rank at root. Root receives a
// slice indexed by rank; other ranks receive nil.
func Gather[T any](c *Comm, v T, root int) ([]T, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("mpi: gather root %d outside communicator of size %d", root, c.Size())
	}
	tag := c.nextCollTag()
	if c.rank != root {
		return nil, c.send(root, tag, v)
	}
	out := make([]T, c.Size())
	out[root] = v
	for i := 0; i < c.Size()-1; i++ {
		payload, from, err := c.recvColl(AnySource, tag)
		if err != nil {
			return nil, err
		}
		got, ok := payload.(T)
		if !ok {
			return nil, fmt.Errorf("mpi: gather type mismatch from rank %d: %T", from, payload)
		}
		out[from] = got
	}
	return out, nil
}

// Allgather collects one value from every rank at every rank.
func Allgather[T any](c *Comm, v T) ([]T, error) {
	all, err := Gather(c, v, 0)
	if err != nil {
		return nil, err
	}
	return Bcast(c, all, 0)
}

// Scatter distributes vals[i] from root to rank i. Only root's vals is
// consulted; it must have exactly Size elements.
func Scatter[T any](c *Comm, vals []T, root int) (T, error) {
	var zero T
	if root < 0 || root >= c.Size() {
		return zero, fmt.Errorf("mpi: scatter root %d outside communicator of size %d", root, c.Size())
	}
	tag := c.nextCollTag()
	if c.rank == root {
		if len(vals) != c.Size() {
			return zero, fmt.Errorf("mpi: scatter with %d values for %d ranks", len(vals), c.Size())
		}
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			if err := c.send(i, tag, vals[i]); err != nil {
				return zero, err
			}
		}
		return vals[root], nil
	}
	payload, _, err := c.recvColl(root, tag)
	if err != nil {
		return zero, err
	}
	got, ok := payload.(T)
	if !ok {
		return zero, fmt.Errorf("mpi: scatter type mismatch: %T, want %T", payload, zero)
	}
	return got, nil
}

// Alltoall sends vals[i] to rank i and returns the values received from
// every rank, indexed by source. vals must have exactly Size elements.
func Alltoall[T any](c *Comm, vals []T) ([]T, error) {
	if len(vals) != c.Size() {
		return nil, fmt.Errorf("mpi: alltoall with %d values for %d ranks", len(vals), c.Size())
	}
	tag := c.nextCollTag()
	for i := 0; i < c.Size(); i++ {
		if i == c.rank {
			continue
		}
		if err := c.send(i, tag, vals[i]); err != nil {
			return nil, err
		}
	}
	out := make([]T, c.Size())
	out[c.rank] = vals[c.rank]
	for i := 0; i < c.Size()-1; i++ {
		payload, from, err := c.recvColl(AnySource, tag)
		if err != nil {
			return nil, err
		}
		got, ok := payload.(T)
		if !ok {
			return nil, fmt.Errorf("mpi: alltoall type mismatch from rank %d: %T", from, payload)
		}
		out[from] = got
	}
	return out, nil
}

// Reduce combines one value per rank with op at root. op must be
// associative and commutative; values are folded in rank order so even
// non-commutative ops behave deterministically.
func Reduce[T any](c *Comm, v T, op func(a, b T) T, root int) (T, error) {
	var zero T
	all, err := Gather(c, v, root)
	if err != nil {
		return zero, err
	}
	if c.rank != root {
		return zero, nil
	}
	acc := all[0]
	for _, x := range all[1:] {
		acc = op(acc, x)
	}
	return acc, nil
}

// Allreduce combines one value per rank with op and returns the result on
// every rank.
func Allreduce[T any](c *Comm, v T, op func(a, b T) T) (T, error) {
	var zero T
	red, err := Reduce(c, v, op, 0)
	if err != nil {
		return zero, err
	}
	return Bcast(c, red, 0)
}

// AllreduceFloat64s element-wise reduces equal-length slices across ranks
// (e.g. merging per-rank histogram bin counts); every rank receives the
// combined slice. The input slice is not modified.
func AllreduceFloat64s(c *Comm, v []float64, op func(a, b float64) float64) ([]float64, error) {
	return Allreduce(c, append([]float64(nil), v...), func(a, b []float64) []float64 {
		if len(a) != len(b) {
			panic(fmt.Sprintf("mpi: allreduce slice length mismatch: %d vs %d", len(a), len(b)))
		}
		out := make([]float64, len(a))
		for i := range a {
			out[i] = op(a[i], b[i])
		}
		return out
	})
}

// Common reduction operators.

// Sum adds two values.
func Sum[T int | int64 | float64](a, b T) T { return a + b }

// Min returns the smaller value.
func Min[T int | int64 | float64](a, b T) T {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger value.
func Max[T int | int64 | float64](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// Split partitions the communicator by color: ranks passing the same
// color form a new communicator, ordered by (key, old rank). Every rank
// must call Split; there is no MPI_UNDEFINED — a rank that wants to be
// alone passes a unique color.
func (c *Comm) Split(color, key int) (*Comm, error) {
	type ck struct{ Color, Key, Rank int }
	all, err := Allgather(c, ck{color, key, c.rank})
	if err != nil {
		return nil, err
	}
	members := make([]ck, 0, len(all))
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return members[i].Rank < members[j].Rank
	})
	myNewRank := -1
	for i, m := range members {
		if m.Rank == c.rank {
			myNewRank = i
			break
		}
	}
	c.splitSeq++
	id := fmt.Sprintf("%s/split%d/c%d", c.g.id, c.splitSeq, color)
	w := c.g.w
	w.mu.Lock()
	g, ok := w.groups[id]
	if !ok {
		g = &group{id: id, w: w, boxes: make([]*mailbox, len(members))}
		for i := range g.boxes {
			g.boxes[i] = newMailbox()
		}
		w.groups[id] = g
		w.allBoxes = append(w.allBoxes, g.boxes...)
	}
	w.mu.Unlock()
	return &Comm{g: g, rank: myNewRank}, nil
}
