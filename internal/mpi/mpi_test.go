package mpi

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunRankAndSize(t *testing.T) {
	const n = 8
	var seen [n]int32
	err := Run(n, func(c *Comm) error {
		if c.Size() != n {
			return fmt.Errorf("Size = %d", c.Size())
		}
		atomic.AddInt32(&seen[c.Rank()], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range seen {
		if v != 1 {
			t.Fatalf("rank %d ran %d times", r, v)
		}
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("Run(0) succeeded")
	}
	if err := Run(-3, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("Run(-3) succeeded")
	}
}

func TestSendRecvPingPong(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, 42.5); err != nil {
				return err
			}
			v, from, err := RecvT[string](c, 1, 8)
			if err != nil {
				return err
			}
			if v != "pong" || from != 1 {
				return fmt.Errorf("got %q from %d", v, from)
			}
			return nil
		}
		v, _, err := RecvT[float64](c, 0, 7)
		if err != nil {
			return err
		}
		if v != 42.5 {
			return fmt.Errorf("got %v", v)
		}
		return c.Send(0, 8, "pong")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvOrderingPerSenderTag(t *testing.T) {
	// Messages from one sender with one tag must arrive in order.
	const k = 100
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				if err := c.Send(1, 1, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			v, _, err := RecvT[int](c, 0, 1)
			if err != nil {
				return err
			}
			if v != i {
				return fmt.Errorf("message %d arrived as %d", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvByTagOutOfOrder(t *testing.T) {
	// A receiver asking for tag 2 first must get the tag-2 message even
	// though a tag-1 message arrived before it.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, "first"); err != nil {
				return err
			}
			return c.Send(1, 2, "second")
		}
		v2, _, err := RecvT[string](c, 0, 2)
		if err != nil {
			return err
		}
		v1, _, err := RecvT[string](c, 0, 1)
		if err != nil {
			return err
		}
		if v2 != "second" || v1 != "first" {
			return fmt.Errorf("got %q, %q", v2, v1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySource(t *testing.T) {
	const n = 5
	err := Run(n, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, 3, c.Rank())
		}
		got := map[int]bool{}
		for i := 0; i < n-1; i++ {
			v, from, err := RecvT[int](c, AnySource, 3)
			if err != nil {
				return err
			}
			if v != from {
				return fmt.Errorf("payload %d from rank %d", v, from)
			}
			got[from] = true
		}
		if len(got) != n-1 {
			return fmt.Errorf("heard from %d ranks", len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendErrors(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("send to out-of-range rank succeeded")
		}
		if err := c.Send(0, -1, nil); err == nil {
			return errors.New("send with negative tag succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvErrors(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if _, _, err := c.Recv(9, 0); err == nil {
			return errors.New("recv from out-of-range rank succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTypeMismatch(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, "not a float")
		}
		_, _, err := RecvT[float64](c, 0, 0)
		if err == nil {
			return errors.New("type mismatch not detected")
		}
		if !strings.Contains(err.Error(), "type mismatch") {
			return fmt.Errorf("unexpected error %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorAbortsBlockedRanks(t *testing.T) {
	// Rank 1 fails immediately; rank 0 is blocked in Recv forever and must
	// be released with ErrAborted instead of deadlocking.
	start := time.Now()
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			return errors.New("injected failure")
		}
		_, _, err := c.Recv(1, 0)
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("blocked recv returned %v, want ErrAborted", err)
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run did not surface the rank error")
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("error = %v, want RankError from rank 1", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("abort took too long; ranks were deadlocked")
	}
}

func TestPanicInRankIsCaptured(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("boom")
		}
		_, _, err := c.Recv(0, 0)
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("got %v", err)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panic: boom") {
		t.Fatalf("err = %v, want captured panic", err)
	}
}

func TestExternalContextCancelAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RunCtx(ctx, 2, func(c *Comm) error {
			if c.Rank() == 0 {
				_, _, err := c.Recv(1, 0) // blocks forever
				if errors.Is(err, ErrAborted) {
					return nil
				}
				return fmt.Errorf("recv returned %v", err)
			}
			<-c.Context().Done()
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunCtx did not return after external cancel")
	}
}

func TestSendAfterAbortFails(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunCtx(ctx, 1, func(c *Comm) error {
		// Give the abort watcher a moment to run.
		for i := 0; i < 100; i++ {
			if err := c.send(0, 0, nil); errors.Is(err, ErrAborted) {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		return errors.New("send kept succeeding after abort")
	})
	if err != nil {
		t.Fatal(err)
	}
}
