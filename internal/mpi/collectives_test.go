package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBarrierSynchronizes(t *testing.T) {
	// No rank may leave the barrier before all have entered: count entries
	// before the barrier and verify the count is full after it.
	const n = 16
	var entered int32
	err := Run(n, func(c *Comm) error {
		atomic.AddInt32(&entered, 1)
		if err := c.Barrier(); err != nil {
			return err
		}
		if got := atomic.LoadInt32(&entered); got != n {
			return fmt.Errorf("rank %d left barrier with %d/%d entered", c.Rank(), got, n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierRepeated(t *testing.T) {
	err := Run(7, func(c *Comm) error {
		for i := 0; i < 25; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		v := ""
		if c.Rank() == 2 {
			v = "hello"
		}
		got, err := Bcast(c, v, 2)
		if err != nil {
			return err
		}
		if got != "hello" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastBadRoot(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if _, err := Bcast(c, 0, 5); err == nil {
			return errors.New("bcast accepted bad root")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	const n = 5
	err := Run(n, func(c *Comm) error {
		all, err := Gather(c, c.Rank()*10, 3)
		if err != nil {
			return err
		}
		if c.Rank() != 3 {
			if all != nil {
				return fmt.Errorf("non-root rank %d got %v", c.Rank(), all)
			}
			return nil
		}
		for r, v := range all {
			if v != r*10 {
				return fmt.Errorf("gathered %v", all)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const n = 6
	err := Run(n, func(c *Comm) error {
		all, err := Allgather(c, fmt.Sprintf("r%d", c.Rank()))
		if err != nil {
			return err
		}
		if len(all) != n {
			return fmt.Errorf("len = %d", len(all))
		}
		for r, v := range all {
			if v != fmt.Sprintf("r%d", r) {
				return fmt.Errorf("all = %v", all)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	const n = 4
	err := Run(n, func(c *Comm) error {
		var vals []int
		if c.Rank() == 0 {
			vals = []int{100, 101, 102, 103}
		}
		got, err := Scatter(c, vals, 0)
		if err != nil {
			return err
		}
		if got != 100+c.Rank() {
			return fmt.Errorf("rank %d got %d", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterWrongLength(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		var vals []int
		if c.Rank() == 0 {
			vals = []int{1} // wrong: needs 2
			if _, err := Scatter(c, vals, 0); err == nil {
				return errors.New("scatter accepted short slice")
			}
			return errors.New("stop") // abort so rank 1 unblocks
		}
		_, err := Scatter[int](c, nil, 0)
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("rank 1 got %v", err)
		}
		return nil
	})
	if err == nil || !errors.Is(errors.Unwrap(err), errors.Unwrap(err)) {
		// Run surfaces rank 0's sentinel "stop" error; reaching here is success.
		_ = err
	}
}

func TestAlltoall(t *testing.T) {
	const n = 5
	err := Run(n, func(c *Comm) error {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = c.Rank()*100 + i // destined for rank i
		}
		got, err := Alltoall(c, vals)
		if err != nil {
			return err
		}
		for src, v := range got {
			if v != src*100+c.Rank() {
				return fmt.Errorf("rank %d got %v", c.Rank(), got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	const n = 9
	err := Run(n, func(c *Comm) error {
		got, err := Reduce(c, c.Rank()+1, Sum[int], 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && got != n*(n+1)/2 {
			return fmt.Errorf("sum = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMinMax(t *testing.T) {
	const n = 8
	err := Run(n, func(c *Comm) error {
		v := float64((c.Rank()*7)%n) + 0.5
		mn, err := Allreduce(c, v, Min[float64])
		if err != nil {
			return err
		}
		mx, err := Allreduce(c, v, Max[float64])
		if err != nil {
			return err
		}
		if mn != 0.5 || mx != float64(n-1)+0.5 {
			return fmt.Errorf("min=%v max=%v", mn, mx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceFloat64sElementwise(t *testing.T) {
	const n = 4
	err := Run(n, func(c *Comm) error {
		local := []float64{float64(c.Rank()), 1, float64(c.Rank() * c.Rank())}
		got, err := AllreduceFloat64s(c, local, Sum[float64])
		if err != nil {
			return err
		}
		want := []float64{0 + 1 + 2 + 3, n, 0 + 1 + 4 + 9}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("got %v, want %v", got, want)
			}
		}
		// Input must be untouched.
		if local[0] != float64(c.Rank()) {
			return errors.New("allreduce mutated its input")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBackToBackCollectivesDoNotCrossTalk(t *testing.T) {
	// Rapid-fire different collectives; any tag collision would mix
	// payloads across calls.
	err := Run(6, func(c *Comm) error {
		for iter := 0; iter < 20; iter++ {
			b, err := Bcast(c, iter*1000, 0)
			if err != nil {
				return err
			}
			if b != iter*1000 {
				return fmt.Errorf("bcast iter %d got %d", iter, b)
			}
			s, err := Allreduce(c, 1, Sum[int])
			if err != nil {
				return err
			}
			if s != c.Size() {
				return fmt.Errorf("allreduce iter %d got %d", iter, s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitByParity(t *testing.T) {
	const n = 7
	err := Run(n, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		wantSize := (n + 1) / 2
		if c.Rank()%2 == 1 {
			wantSize = n / 2
		}
		if sub.Size() != wantSize {
			return fmt.Errorf("rank %d sub size %d, want %d", c.Rank(), sub.Size(), wantSize)
		}
		// New ranks are ordered by key (old rank).
		if sub.Rank() != c.Rank()/2 {
			return fmt.Errorf("old rank %d new rank %d", c.Rank(), sub.Rank())
		}
		// The subcommunicator must work for collectives, isolated from the
		// other color.
		sum, err := Allreduce(sub, c.Rank(), Sum[int])
		if err != nil {
			return err
		}
		want := 0
		for r := c.Rank() % 2; r < n; r += 2 {
			want += r
		}
		if sum != want {
			return fmt.Errorf("sub allreduce = %d, want %d", sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyControlsOrder(t *testing.T) {
	const n = 4
	err := Run(n, func(c *Comm) error {
		// Reverse the rank order via keys.
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		if sub.Rank() != n-1-c.Rank() {
			return fmt.Errorf("old %d new %d", c.Rank(), sub.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitTwiceIsIndependent(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		a, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		b, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if _, err := Allreduce(a, 1, Sum[int]); err != nil {
			return err
		}
		s, err := Allreduce(b, 1, Sum[int])
		if err != nil {
			return err
		}
		if s != 2 {
			return fmt.Errorf("second split size = %d", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Allreduce(Sum) equals the serial sum for random world sizes
// and values, on every rank.
func TestQuickAllreduceSum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		vals := make([]float64, n)
		want := 0.0
		for i := range vals {
			vals[i] = float64(r.Intn(1000))
			want += vals[i]
		}
		ok := int32(0)
		err := Run(n, func(c *Comm) error {
			got, err := Allreduce(c, vals[c.Rank()], Sum[float64])
			if err != nil {
				return err
			}
			if got == want {
				atomic.AddInt32(&ok, 1)
			}
			return nil
		})
		return err == nil && ok == int32(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Split partitions ranks — each rank lands in exactly one
// subcommunicator, subgroup sizes sum to the world size, and every
// subgroup's rank space is exactly [0, subsize).
func TestQuickSplitPartitions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		colors := make([]int, n)
		for i := range colors {
			colors[i] = r.Intn(3)
		}
		type res struct{ color, newRank, newSize int }
		results := make([]res, n)
		err := Run(n, func(c *Comm) error {
			sub, err := c.Split(colors[c.Rank()], 0)
			if err != nil {
				return err
			}
			results[c.Rank()] = res{colors[c.Rank()], sub.Rank(), sub.Size()}
			return nil
		})
		if err != nil {
			return false
		}
		byColor := map[int][]res{}
		for _, e := range results {
			byColor[e.color] = append(byColor[e.color], e)
		}
		total := 0
		for _, group := range byColor {
			total += len(group)
			seen := map[int]bool{}
			for _, e := range group {
				if e.newSize != len(group) || e.newRank < 0 || e.newRank >= len(group) || seen[e.newRank] {
					return false
				}
				seen[e.newRank] = true
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
