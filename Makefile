GO ?= go

.PHONY: check build test vet race chaos bench

# The full pre-merge gate: static checks, build, and the race-enabled
# test suite.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault-injection suite on its own (seeded, deterministic plans).
chaos:
	$(GO) test ./internal/workflow -run TestChaos -v

# The root benchmark suite (paper tables/figures) at reduced scale, with
# the machine-readable results written to BENCH_PR2.json. The raw
# `go test -bench` lines stay visible on stderr via cmd/benchjson.
bench:
	SBBENCH_SIZE=0.25 $(GO) test -bench=. -benchmem -count=1 -run '^$$' . | $(GO) run ./cmd/benchjson > BENCH_PR2.json
