GO ?= go

# Coverage floors for the packages whose failure modes are subtlest: the
# stream fabric and the supervisor. Raise them as coverage grows; never
# lower them to ship.
COVER_FLOOR_flexpath ?= 80.0
COVER_FLOOR_workflow ?= 90.0
COVER_FLOOR_controlplane ?= 85.0
# Per-target fuzz budget for the smoke in `cover`. Eight targets at the
# default make the whole smoke about ten seconds.
FUZZTIME ?= 1s

.PHONY: check build test vet race chaos bench cover conformance plan recover replay corpus optimize

# The full pre-merge gate: static checks, build, the race-enabled test
# suite, the backend conformance matrix, coverage floors, plan-output
# snapshots, crash-recovery drills, the offline-replay self-diff, the
# golden-corpus regression gate, the cost-model optimizer loop, and a
# short fuzz round of every fuzz target.
check: vet build race conformance cover plan recover replay corpus optimize

# Golden snapshots of `sbrun -explain` (and `-explain -optimize`) for
# the example workflows. The plan rendering is a user-facing contract;
# refresh intentionally with:
#   go test ./internal/workflow -run 'TestPlanGolden|TestPlanOptimizedGolden' -update
plan:
	$(GO) test ./internal/workflow -run 'TestPlanGolden|TestPlanOptimizedGolden' -count=1

# The cost-model optimizer loop under the race detector: the planner's
# knee/fusion/transport decisions, the elastic-rescale drill (lagging
# stage re-scaled at a step boundary, exactly-once proven from spans),
# the what-if predicted-vs-measured rank-order agreement, and the
# record -> profile -> optimize -> byte-identical re-run end-to-end.
optimize:
	$(GO) test -race -count=1 ./internal/workflow -run 'TestPlanner|TestElasticRescale|TestRescale|TestStageCtl|TestExplainOptimized'
	$(GO) test -race -count=1 ./internal/replay -run 'TestReplayProfile|TestWhatIf|TestOptimizeEndToEnd' -v

# The transport contract suite under the race detector, once per stream
# fabric backend. A backend that silently skips is a gate failure —
# except uds and shm on platforms without AF_UNIX or shared file
# mappings, their only legitimate skips.
conformance:
	@set -e; \
	for backend in Inproc TCP UDS Shm; do \
		echo "conformance: backend $$backend (-race)"; \
		out=$$($(GO) test -race -v -count=1 ./internal/flexpath -run "^TestConformance$$backend$$") || { echo "$$out"; exit 1; }; \
		if echo "$$out" | grep -q -- "--- PASS: TestConformance$$backend"; then \
			:; \
		elif [ "$$backend" = UDS ] && echo "$$out" | grep -q "AF_UNIX"; then \
			echo "conformance: uds skipped (no AF_UNIX on this platform)"; \
		elif [ "$$backend" = Shm ] && echo "$$out" | grep -qi "SKIP"; then \
			echo "conformance: shm skipped (no AF_UNIX or shared mappings on this platform)"; \
		else \
			echo "conformance: backend $$backend did not run"; echo "$$out"; exit 1; \
		fi; \
	done

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage floors plus the fuzz smoke. Fuzz targets are discovered, not
# listed here, so a new Fuzz* function is smoked automatically.
cover:
	@set -e; \
	for spec in internal/flexpath:$(COVER_FLOOR_flexpath) internal/workflow:$(COVER_FLOOR_workflow) internal/controlplane:$(COVER_FLOOR_controlplane); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$($(GO) test -cover ./$$pkg | awk '{for(i=1;i<=NF;i++) if ($$i ~ /%$$/) {gsub(/%/,"",$$i); print $$i}}'); \
		[ -n "$$pct" ] || { echo "cover: go test -cover ./$$pkg failed"; exit 1; }; \
		echo "cover: ./$$pkg $$pct% (floor $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN{exit !(p+0 >= f+0)}' || { echo "cover: ./$$pkg fell below its $$floor% floor"; exit 1; }; \
	done
	@set -e; \
	for pkg in ./internal/adios ./internal/controlplane ./internal/flexpath ./internal/launch ./internal/replay ./internal/streamlog; do \
		for target in $$($(GO) test $$pkg -list '^Fuzz' -run '^$$' | grep '^Fuzz'); do \
			echo "cover: fuzz smoke $$pkg $$target ($(FUZZTIME))"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) >/dev/null; \
		done; \
	done

# The offline-replay drills under the race detector: record a fixture
# workflow, replay it bit-identically, and A/B self-diff a component
# over the recording expecting zero divergences — determinism of the
# replay path itself, proven on every gate.
replay:
	$(GO) test -race -count=1 ./internal/replay -run 'TestReplayBitIdentical|TestDiffSelfIsClean|TestDiffPerturbedScale' -v

# The golden-corpus regression gate: replay the checked-in crack
# workflow recording (internal/replay/testdata/corpus) against HEAD
# kernels and demand bit-identical outputs — once through the sbreplay
# CLI's cross-recording diff at tol 0, once through the go test (which
# also pins the histogram text output). Regenerate deliberately with:
#   go test ./internal/replay -run TestCorpusGolden -update
CORPUS := internal/replay/testdata/corpus
corpus:
	$(GO) run ./cmd/sbreplay -diff -tol 0 -stage magnitude -log-dir $(CORPUS)/crack -against $(CORPUS)/crack $(CORPUS)/crack.sb
	$(GO) test -race -count=1 ./internal/replay -run TestCorpusGolden -v

# The fault-injection suite on its own (seeded, deterministic plans).
chaos:
	$(GO) test ./internal/workflow -run TestChaos -v

# The durable-log crash drills under the race detector: broker state
# rebuilt from the journal, catch-up replay, and the kill-and-restart
# end-to-end — the log's whole reason to exist, exercised on every gate.
recover:
	$(GO) test -race -count=1 ./internal/flexpath -run 'TestBrokerRecover|TestRecover|TestReplay'
	$(GO) test -race -count=1 ./internal/workflow -run 'TestChaosBrokerCrashRecovery|TestChaosTenantIsolation' -v

# The root benchmark suite (paper tables/figures) at reduced scale, with
# the machine-readable results written to BENCH_PR10.json (BENCH_PR7.json
# is the previous baseline for regression comparison). The raw
# `go test -bench` lines stay visible on stderr via cmd/benchjson.
# SBBENCH_SIZE / SB_KERNEL_WORKERS / SBBENCH_TRANSPORT are exported (not
# prefixed) so both sides of the pipe see them: the benchmarks to
# configure themselves, benchjson to stamp "_meta".
SB_KERNEL_WORKERS ?=
SBBENCH_TRANSPORT ?= inproc
bench:
	export SBBENCH_SIZE=0.25 SB_KERNEL_WORKERS=$(SB_KERNEL_WORKERS) SBBENCH_TRANSPORT=$(SBBENCH_TRANSPORT); \
	$(GO) test -bench=. -benchmem -count=1 -run '^$$' . | $(GO) run ./cmd/benchjson > BENCH_PR10.json
