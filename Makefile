GO ?= go

# Coverage floors for the packages whose failure modes are subtlest: the
# stream fabric and the supervisor. Raise them as coverage grows; never
# lower them to ship.
COVER_FLOOR_flexpath ?= 80.0
COVER_FLOOR_workflow ?= 90.0
# Per-target fuzz budget for the smoke in `cover`. Eight targets at the
# default make the whole smoke about ten seconds.
FUZZTIME ?= 1s

.PHONY: check build test vet race chaos bench cover

# The full pre-merge gate: static checks, build, the race-enabled test
# suite, coverage floors, and a short fuzz round of every fuzz target.
check: vet build race cover

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage floors plus the fuzz smoke. Fuzz targets are discovered, not
# listed here, so a new Fuzz* function is smoked automatically.
cover:
	@set -e; \
	for spec in internal/flexpath:$(COVER_FLOOR_flexpath) internal/workflow:$(COVER_FLOOR_workflow); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$($(GO) test -cover ./$$pkg | awk '{for(i=1;i<=NF;i++) if ($$i ~ /%$$/) {gsub(/%/,"",$$i); print $$i}}'); \
		[ -n "$$pct" ] || { echo "cover: go test -cover ./$$pkg failed"; exit 1; }; \
		echo "cover: ./$$pkg $$pct% (floor $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN{exit !(p+0 >= f+0)}' || { echo "cover: ./$$pkg fell below its $$floor% floor"; exit 1; }; \
	done
	@set -e; \
	for pkg in ./internal/adios ./internal/launch; do \
		for target in $$($(GO) test $$pkg -list '^Fuzz' -run '^$$' | grep '^Fuzz'); do \
			echo "cover: fuzz smoke $$pkg $$target ($(FUZZTIME))"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) >/dev/null; \
		done; \
	done

# The fault-injection suite on its own (seeded, deterministic plans).
chaos:
	$(GO) test ./internal/workflow -run TestChaos -v

# The root benchmark suite (paper tables/figures) at reduced scale, with
# the machine-readable results written to BENCH_PR2.json. The raw
# `go test -bench` lines stay visible on stderr via cmd/benchjson.
# SBBENCH_SIZE is exported (not prefixed) so both sides of the pipe see
# it: the benchmarks to scale themselves, benchjson to stamp "_meta".
bench:
	export SBBENCH_SIZE=0.25; $(GO) test -bench=. -benchmem -count=1 -run '^$$' . | $(GO) run ./cmd/benchjson > BENCH_PR2.json
