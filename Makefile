GO ?= go

.PHONY: check build test vet race chaos

# The full pre-merge gate: static checks, build, and the race-enabled
# test suite.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault-injection suite on its own (seeded, deterministic plans).
chaos:
	$(GO) test ./internal/workflow -run TestChaos -v
