// Package repro's root benchmark suite regenerates the paper's
// evaluation (one benchmark per table and figure, §V) under `go test
// -bench=. -benchmem`. Each benchmark runs the corresponding experiment
// from internal/bench at a reduced default scale and reports the paper's
// metric through b.ReportMetric:
//
//	BenchmarkTable1GTCPWeakScaling    — end-to-end KB/s per process per run
//	BenchmarkFig9PerComponentThroughput — per-component KB/s per process
//	BenchmarkTable2AIOComparison      — completion seconds for AIO / SmartBlock / sim-only
//	BenchmarkFig10MagnitudeStrongScaling — timestep seconds vs MB per process
//	BenchmarkAblation*                — the DESIGN.md §5 design-choice ablations
//
// The SBBENCH_SIZE environment variable scales the workloads (default
// 0.25; the sbbench binary defaults to 1.0 for report-quality numbers).
package repro

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/bench"
)

func sizeFactor() float64 {
	if s := os.Getenv("SBBENCH_SIZE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.25
}

func BenchmarkTable1GTCPWeakScaling(b *testing.B) {
	scales := bench.DefaultGTCPScales(sizeFactor())
	for _, scale := range scales {
		b.Run(fmt.Sprintf("%s/procs=%d", scale.Name, scale.TotalProcs()), func(b *testing.B) {
			b.ReportAllocs()
			var last bench.GTCPWeakResult
			for i := 0; i < b.N; i++ {
				results, err := bench.RunGTCPWeak(context.Background(), []bench.GTCPScale{scale})
				if err != nil {
					b.Fatal(err)
				}
				last = results[0]
			}
			b.ReportMetric(bench.KBps(last.EndToEndThroughput()), "KB/s/proc")
			b.ReportMetric(float64(scale.OutputBytes())/bench.MB, "MB-output")
		})
	}
}

func BenchmarkFig9PerComponentThroughput(b *testing.B) {
	scales := bench.DefaultGTCPScales(sizeFactor())
	for _, scale := range scales {
		b.Run(scale.Name, func(b *testing.B) {
			b.ReportAllocs()
			var rows []bench.Fig9Row
			for i := 0; i < b.N; i++ {
				results, err := bench.RunGTCPWeak(context.Background(), []bench.GTCPScale{scale})
				if err != nil {
					b.Fatal(err)
				}
				rows = bench.Fig9Rows(results)
			}
			b.ReportMetric(bench.KBps(rows[0].Select), "select-KB/s/proc")
			b.ReportMetric(bench.KBps(rows[0].DimRed1), "dimred1-KB/s/proc")
			b.ReportMetric(bench.KBps(rows[0].DimRed2), "dimred2-KB/s/proc")
		})
	}
}

func BenchmarkTable2AIOComparison(b *testing.B) {
	scales := bench.DefaultAIOScales(sizeFactor())
	for _, scale := range scales {
		b.Run(fmt.Sprintf("%s/MB=%s", scale.Name, bench.Sizef(scale.OutputBytes())), func(b *testing.B) {
			b.ReportAllocs()
			var row bench.AIOComparisonRow
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunAIOComparison(context.Background(), []bench.AIOScale{scale})
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(row.AIO.Seconds(), "aio-s")
			b.ReportMetric(row.SB.Seconds(), "smartblock-s")
			b.ReportMetric(row.Fused.Seconds(), "fused-s")
			b.ReportMetric(row.SimOnly.Seconds(), "simonly-s")
			b.ReportMetric(row.OverheadPct(), "overhead-%")
			b.ReportMetric(row.FusedOverheadPct(), "fused-overhead-%")
		})
	}
}

// BenchmarkTable2Componentized and BenchmarkTable2Fused run the
// identical Fig. 8 pipeline spec with the broker-hopping componentized
// stages and with the plan-fusion pass applied. Their allocs/op and
// time/op are directly comparable: fusion elides the interior stream,
// so the fused run must allocate strictly less and finish faster while
// producing byte-identical histograms (checked every iteration against
// a componentized reference).
func BenchmarkTable2Componentized(b *testing.B) {
	benchmarkPipeline(b, false)
}

func BenchmarkTable2Fused(b *testing.B) {
	benchmarkPipeline(b, true)
}

func benchmarkPipeline(b *testing.B, fuse bool) {
	b.ReportAllocs()
	particles := int(20000 * sizeFactor())
	const steps = 3
	_, ref, err := bench.RunPipelineOnce(context.Background(), particles, steps, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var elapsed float64
	for i := 0; i < b.N; i++ {
		t, hists, err := bench.RunPipelineOnce(context.Background(), particles, steps, fuse)
		if err != nil {
			b.Fatal(err)
		}
		elapsed = t.Seconds()
		if !reflect.DeepEqual(hists, ref) {
			b.Fatalf("pipeline output diverged from componentized reference (fuse=%v)", fuse)
		}
	}
	b.ReportMetric(elapsed, "end2end-s")
}

func BenchmarkFig10MagnitudeStrongScaling(b *testing.B) {
	cfg := bench.DefaultFig10Config(sizeFactor())
	for _, magProcs := range cfg.MagProcsSweep {
		one := cfg
		one.MagProcsSweep = []int{magProcs}
		b.Run(fmt.Sprintf("magProcs=%d", magProcs), func(b *testing.B) {
			b.ReportAllocs()
			var row bench.Fig10Row
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunMagnitudeStrongScaling(context.Background(), one)
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(row.StepTime.Seconds(), "timestep-s")
			b.ReportMetric(row.KernelTime.Seconds(), "kernel-s")
			b.ReportMetric(float64(row.BytesPerProc)/bench.MB, "MB/proc")
		})
	}
}

// BenchmarkFig10TransportComparison reruns the Fig. 10 strong-scaling
// sweep's middle point over the multi-process fabrics. Together with
// BenchmarkFig10MagnitudeStrongScaling (the in-process fabric) it shows
// what each backend costs per timestep: timestep-s is wall time per
// workflow step (the metric that actually includes transport), kernel-s
// is the swept component's in-kernel mean, so their gap is fabric cost.
// shm must beat uds and uds must match or beat TCP loopback, or the
// shared-segment / coalesced publish paths have regressed.
func BenchmarkFig10TransportComparison(b *testing.B) {
	backends := []struct {
		name    string
		factory bench.BackendFactory
	}{
		{"tcp", bench.TCPLoopbackBackend},
		{"uds", bench.UDSBackend},
		{"shm", bench.ShmBackend},
	}
	for _, be := range backends {
		cfg := bench.DefaultFig10Config(sizeFactor())
		cfg.Backend = be.factory
		cfg.MagProcsSweep = []int{4}
		b.Run(fmt.Sprintf("transport=%s/magProcs=4", be.name), func(b *testing.B) {
			b.ReportAllocs()
			var row bench.Fig10Row
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunMagnitudeStrongScaling(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(row.StepTime.Seconds(), "timestep-s")
			b.ReportMetric(row.KernelTime.Seconds(), "kernel-s")
			b.ReportMetric(float64(row.BytesPerProc)/bench.MB, "MB/proc")
		})
	}
}

func BenchmarkAblationQueueDepth(b *testing.B) {
	particles := int(20000 * sizeFactor())
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			var rows []bench.AblationRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = bench.RunQueueDepthAblation(context.Background(), particles, 4, []int{depth})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].Elapsed.Seconds(), "end2end-s")
		})
	}
}

func BenchmarkAblationFusion(b *testing.B) {
	b.ReportAllocs()
	particles := int(20000 * sizeFactor())
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunFusionAblation(context.Background(), particles, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Elapsed.Seconds(), "pipeline-s")
	b.ReportMetric(rows[1].Elapsed.Seconds(), "planfused-s")
	b.ReportMetric(rows[2].Elapsed.Seconds(), "fused-s")
}

func BenchmarkAblationPartitionAxis(b *testing.B) {
	b.ReportAllocs()
	points := int(4096 * sizeFactor())
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunPartitionPolicyAblation(context.Background(), 4, points, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Elapsed.Seconds(), "first-axis-s")
	b.ReportMetric(rows[1].Elapsed.Seconds(), "longest-axis-s")
}

func BenchmarkAblationPlanner(b *testing.B) {
	b.ReportAllocs()
	particles := int(20000 * sizeFactor())
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunPlannerAblation(context.Background(), particles, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Elapsed.Seconds(), "scripted-s")
	b.ReportMetric(rows[1].Elapsed.Seconds(), "optimized-s")
}

func BenchmarkAblationTransport(b *testing.B) {
	b.ReportAllocs()
	atoms := int(50000 * sizeFactor())
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunTransportAblation(context.Background(), atoms, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Elapsed.Seconds(), "inproc-s")
	b.ReportMetric(rows[1].Elapsed.Seconds(), "tcp-s")
	b.ReportMetric(rows[2].Elapsed.Seconds(), "uds-s")
	b.ReportMetric(rows[3].Elapsed.Seconds(), "shm-s")
}
