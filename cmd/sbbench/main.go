// Command sbbench regenerates the SmartBlock paper's evaluation tables
// and figures (§V) on this machine:
//
//	sbbench -exp table1|fig9|table2|fig10|ablations|all [-size f]
//
// Each experiment prints the same rows/series the paper reports; -size
// scales the workload (1.0 ≈ tens of MB per run; raise it on a beefier
// machine to stress the transport harder). Absolute times differ from
// the paper's Titan/Falcon numbers by construction — the shapes (flat
// weak scaling, small componentization overhead, linear strong-scaling
// domain) are the reproduction targets; see EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig9, table2, fig10, ablations, all")
	size := flag.Float64("size", 1.0, "workload scale factor")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	run := func(name string, fn func(context.Context) error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(ctx); err != nil {
			log.Fatalf("sbbench %s: %v", name, err)
		}
	}

	// table1 and fig9 share one sweep; when both are requested the sweep
	// runs once.
	var gtcpResults []bench.GTCPWeakResult
	gtcpSweep := func(ctx context.Context) error {
		if gtcpResults != nil {
			return nil
		}
		var err error
		gtcpResults, err = bench.RunGTCPWeak(ctx, bench.DefaultGTCPScales(*size))
		return err
	}

	run("table1", func(ctx context.Context) error {
		if err := gtcpSweep(ctx); err != nil {
			return err
		}
		fmt.Println(bench.FormatTable1(gtcpResults))
		return nil
	})
	run("fig9", func(ctx context.Context) error {
		if err := gtcpSweep(ctx); err != nil {
			return err
		}
		fmt.Println(bench.FormatFig9(bench.Fig9Rows(gtcpResults)))
		return nil
	})
	run("table2", func(ctx context.Context) error {
		rows, err := bench.RunAIOComparisonRepeated(ctx, bench.DefaultAIOScales(*size), 3)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable2(rows))
		return nil
	})
	run("fig10", func(ctx context.Context) error {
		rows, err := bench.RunMagnitudeStrongScaling(ctx, bench.DefaultFig10Config(*size))
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFig10("Fig. 10: Magnitude strong scaling in the GROMACS workflow", rows))
		// The paper's closing §V-D claim: other components show similar
		// strong-scaling characteristics.
		selRows, err := bench.RunSelectStrongScaling(ctx, bench.DefaultFig10Config(*size))
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFig10("Companion to Fig. 10: Select strong scaling in the LAMMPS workflow", selRows))
		return nil
	})
	run("ablations", func(ctx context.Context) error {
		// Ablations use throughput-bound configurations (large data, the
		// sims' default light subcycling) so the mechanism under test —
		// not simulation compute — dominates the measurement.
		particles := int(100000 * *size)
		qd, err := bench.RunQueueDepthAblation(ctx, particles, 6, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblation("Ablation 1: writer-side queue depth (LAMMPS pipeline)", qd))

		fu, err := bench.RunFusionAblation(ctx, particles, 6)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblation("Ablation 2: pipeline granularity (componentized vs fused)", fu))

		pp, err := bench.RunPartitionPolicyAblation(ctx, 4, int(65536**size), 4)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblation("Ablation 3: partition-axis policy (GTCP Select, ranks > slices)", pp))

		tr, err := bench.RunTransportAblation(ctx, int(200000**size), 4)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblation("Ablation 4: stream fabric backend (inproc vs TCP vs Unix socket vs shm ring, GROMACS pipeline)", tr))

		pl, err := bench.RunPlannerAblation(ctx, particles, 6)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblation("Ablation 5: cost-planner plan rewrite (scripted vs optimized, LAMMPS pipeline)", pl))
		return nil
	})

	switch *exp {
	case "table1", "fig9", "table2", "fig10", "ablations", "all":
	default:
		log.Fatalf("sbbench: unknown experiment %q", *exp)
	}
}
