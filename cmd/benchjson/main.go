// Command benchjson converts `go test -bench` output on stdin into a
// JSON object on stdout, keyed by benchmark name:
//
//	{
//	  "BenchmarkTable2AIOComparison/scale-1/MB=0.2": {
//	    "ns_op": 204800000,
//	    "bytes_op": 5565243,
//	    "allocs_op": 2024,
//	    "metrics": {"aio-s": 0.21, "overhead-%": 3.1}
//	  },
//	  ...
//	}
//
// ns/op, B/op, and allocs/op land in dedicated fields; every other
// `value unit` pair a benchmark reports via b.ReportMetric is collected
// under "metrics". Non-benchmark lines (PASS, ok, goos/goarch headers)
// pass through to stderr so the run remains visible when stdout is
// redirected into a file.
//
// A "_meta" entry records the provenance of the run — commit hash (with
// a -dirty marker for an unclean tree), the SBBENCH_SIZE scale factor,
// the SB_KERNEL_WORKERS kernel-parallelism override, the
// SBBENCH_TRANSPORT fabric backend, and GOMAXPROCS — so a BENCH_*.json
// file is comparable against another without consulting the shell
// history that produced it.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type benchResult struct {
	NsOp     float64            `json:"ns_op"`
	BytesOp  float64            `json:"bytes_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

type benchMeta struct {
	Commit      string `json:"commit,omitempty"`
	SBBenchSize string `json:"sbbench_size,omitempty"`
	// SBKernelWorkers mirrors the SB_KERNEL_WORKERS env override so a
	// run's kernel parallelism is recorded next to its numbers.
	SBKernelWorkers string `json:"sb_kernel_workers,omitempty"`
	// Transport records which stream fabric the benchmarks rode
	// (SBBENCH_TRANSPORT), since transfer costs differ per backend.
	Transport  string `json:"transport,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Goos       string `json:"goos"`
	Goarch     string `json:"goarch"`
}

// meta assembles the run's provenance stamp. Git being absent or the
// directory not being a repository degrades to an empty commit rather
// than an error: the stamp describes the run, it must not fail it.
func meta() benchMeta {
	m := benchMeta{
		SBBenchSize:     os.Getenv("SBBENCH_SIZE"),
		SBKernelWorkers: os.Getenv("SB_KERNEL_WORKERS"),
		Transport:       os.Getenv("SBBENCH_TRANSPORT"),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Goos:            runtime.GOOS,
		Goarch:          runtime.GOARCH,
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		m.Commit = strings.TrimSpace(string(out))
		if out, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(out))) > 0 {
			m.Commit += "-dirty"
		}
	}
	return m
}

func main() {
	results := map[string]*benchResult{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		// fields: name, iterations, then (value, unit) pairs.
		name := fields[0]
		r := &benchResult{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsOp = v
			case "B/op":
				r.BytesOp = v
			case "allocs/op":
				r.AllocsOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		results[name] = r
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// Deterministic output: encode via an ordered intermediate.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf strings.Builder
	buf.WriteString("{\n")
	metaBlob, err := json.Marshal(meta())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(&buf, "  \"_meta\": %s", metaBlob)
	if len(names) > 0 {
		buf.WriteString(",")
	}
	buf.WriteString("\n")
	for i, n := range names {
		blob, err := json.Marshal(results[n])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&buf, "  %q: %s", n, blob)
		if i < len(names)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("}\n")
	os.Stdout.WriteString(buf.String())
}
