// Command sbctl operates a broker-as-a-service: it speaks the admin
// API sbbroker serves on -admin-addr (package controlplane).
//
//	sbctl -addr http://127.0.0.1:7779 tenant add NAME [-max-streams N] [-max-queue-depth N] [-max-bytes N] [-max-workflows N]
//	sbctl -addr URL tenant list
//	sbctl -addr URL tenant evict NAME [-timeout 30s]
//	sbctl -addr URL submit -tenant NAME [-name WF] [-key IDEMKEY] [-wait] SCRIPT.sb
//	sbctl -addr URL status -tenant NAME ID
//	sbctl -addr URL list -tenant NAME
//	sbctl -addr URL cancel -tenant NAME ID
//
// The submit payload is the launch script itself — the same file sbrun
// executes locally — so moving a workflow from "run it myself" to
// "submit it to the shared broker" is a change of verb, not of format.
// Passing "-" as the script path reads it from stdin. With -key the
// submit is retry-safe: resubmitting the same key returns the original
// submission instead of launching a duplicate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/controlplane"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "sbctl: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("sbctl", flag.ContinueOnError)
	addr := global.String("addr", envOr("SBCTL_ADDR", ""), "admin API base URL (e.g. http://127.0.0.1:7779); defaults to $SBCTL_ADDR")
	timeout := global.Duration("timeout", 60*time.Second, "request deadline (also bounds -wait and tenant eviction drains)")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("no command (want tenant, submit, status, list, or cancel)")
	}
	if *addr == "" {
		return controlplane.ErrNoAddr
	}
	c := &controlplane.Client{BaseURL: strings.TrimSuffix(*addr, "/")}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch rest[0] {
	case "tenant":
		return runTenant(ctx, c, rest[1:])
	case "submit":
		return runSubmit(ctx, c, rest[1:])
	case "status":
		return runStatus(ctx, c, rest[1:])
	case "list":
		return runList(ctx, c, rest[1:])
	case "cancel":
		return runCancel(ctx, c, rest[1:])
	default:
		return fmt.Errorf("unknown command %q (want tenant, submit, status, list, or cancel)", rest[0])
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func runTenant(ctx context.Context, c *controlplane.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("tenant wants a subcommand: add, list, or evict")
	}
	switch args[0] {
	case "add":
		fs := flag.NewFlagSet("tenant add", flag.ContinueOnError)
		maxStreams := fs.Int("max-streams", 0, "cap concurrently existing streams (0 = unlimited)")
		maxDepth := fs.Int("max-queue-depth", 0, "cap per-stream queue depth (0 = unlimited)")
		maxBytes := fs.Int64("max-bytes", 0, "cap resident bytes: queued in memory plus on-disk log (0 = unlimited)")
		maxWorkflows := fs.Int("max-workflows", 0, "cap concurrently running workflows (0 = unlimited)")
		// Accept the documented "tenant add NAME -flags" order: flag
		// parsing stops at the name, so resume it on the remainder.
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() == 0 {
			return fmt.Errorf("tenant add wants a tenant name")
		}
		name := fs.Arg(0)
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return err
		}
		if fs.NArg() != 0 {
			return fmt.Errorf("tenant add wants exactly one tenant name")
		}
		spec := controlplane.TenantSpec{
			MaxStreams:    *maxStreams,
			MaxQueueDepth: *maxDepth,
			MaxBytes:      *maxBytes,
			MaxWorkflows:  *maxWorkflows,
		}
		if err := c.RegisterTenant(ctx, name, spec); err != nil {
			return err
		}
		fmt.Printf("tenant %s registered\n", name)
		return nil
	case "list":
		tenants, err := c.Tenants(ctx)
		if err != nil {
			return err
		}
		if len(tenants) == 0 {
			fmt.Println("no tenants registered")
			return nil
		}
		fmt.Printf("%-16s %8s %8s %10s %12s %s\n", "TENANT", "RUNNING", "TOTAL", "STREAMS", "BYTES", "STATE")
		for _, t := range tenants {
			state := "active"
			if t.Evicting {
				state = "evicting"
			}
			fmt.Printf("%-16s %8d %8d %10d %12d %s\n",
				t.Tenant, t.Running, t.Total, t.Streams, t.BytesLive+t.BytesLog, state)
		}
		return nil
	case "evict":
		if len(args) != 2 {
			return fmt.Errorf("tenant evict wants exactly one tenant name")
		}
		if err := c.EvictTenant(ctx, args[1]); err != nil {
			return err
		}
		fmt.Printf("tenant %s evicted\n", args[1])
		return nil
	default:
		return fmt.Errorf("unknown tenant subcommand %q (want add, list, or evict)", args[0])
	}
}

func runSubmit(ctx context.Context, c *controlplane.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	tenant := fs.String("tenant", "", "tenant to submit as (required)")
	name := fs.String("name", "", "workflow name (defaults to the script file name)")
	key := fs.String("key", "", "idempotency key: resubmitting the same key returns the original submission")
	wait := fs.Bool("wait", false, "block until the workflow reaches a terminal state and report it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenant == "" {
		return fmt.Errorf("submit requires -tenant")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("submit wants exactly one launch script path (or - for stdin)")
	}
	path := fs.Arg(0)
	var script []byte
	var err error
	if path == "-" {
		script, err = io.ReadAll(os.Stdin)
	} else {
		script, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	wfName := *name
	if wfName == "" && path != "-" {
		wfName = path
	}
	st, err := c.Submit(ctx, *tenant, controlplane.SubmitRequest{
		Name: wfName, Script: string(script), IdempotencyKey: *key,
	})
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s (%s)\n", st.ID, st.State)
	if !*wait {
		return nil
	}
	final, err := c.WaitDone(ctx, *tenant, st.ID)
	if err != nil {
		return err
	}
	printStatus(final)
	if final.State != controlplane.StateSucceeded {
		return fmt.Errorf("workflow %s %s", final.ID, final.State)
	}
	return nil
}

func runStatus(ctx context.Context, c *controlplane.Client, args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	tenant := fs.String("tenant", "", "tenant owning the submission (required)")
	raw := fs.Bool("json", false, "emit the raw status JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenant == "" || fs.NArg() != 1 {
		return fmt.Errorf("status wants -tenant NAME and exactly one submission id")
	}
	st, err := c.Stat(ctx, *tenant, fs.Arg(0))
	if err != nil {
		return err
	}
	if *raw {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	printStatus(st)
	return nil
}

func runList(ctx context.Context, c *controlplane.Client, args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	tenant := fs.String("tenant", "", "tenant to list (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenant == "" {
		return fmt.Errorf("list requires -tenant")
	}
	subs, err := c.List(ctx, *tenant)
	if err != nil {
		return err
	}
	if len(subs) == 0 {
		fmt.Println("no submissions")
		return nil
	}
	fmt.Printf("%-12s %-24s %-10s %s\n", "ID", "NAME", "STATE", "SUBMITTED")
	for _, st := range subs {
		fmt.Printf("%-12s %-24s %-10s %s\n", st.ID, st.Name, st.State,
			st.Submitted.Format(time.RFC3339))
	}
	return nil
}

func runCancel(ctx context.Context, c *controlplane.Client, args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ContinueOnError)
	tenant := fs.String("tenant", "", "tenant owning the submission (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenant == "" || fs.NArg() != 1 {
		return fmt.Errorf("cancel wants -tenant NAME and exactly one submission id")
	}
	st, err := c.Cancel(ctx, *tenant, fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("%s %s\n", st.ID, st.State)
	return nil
}

// printStatus renders one submission human-readably: the header line,
// per-stage rows, and the most interesting progress counters.
func printStatus(st controlplane.Status) {
	fmt.Printf("%s  %s  %s", st.ID, st.Name, st.State)
	if st.Elapsed > 0 {
		fmt.Printf("  (%s)", st.Elapsed.Round(time.Millisecond))
	}
	fmt.Println()
	for _, stage := range st.Stages {
		line := fmt.Sprintf("  stage %-16s procs=%d", stage.Component, stage.Procs)
		if stage.Restarts > 0 {
			line += fmt.Sprintf(" restarts=%d", stage.Restarts)
		}
		if stage.Err != "" {
			line += " err=" + stage.Err
		}
		fmt.Println(line)
	}
	if st.Err != "" {
		fmt.Printf("  error: %s\n", st.Err)
	}
	// Progress counters: the per-component step samples tell at a
	// glance which stage is moving and which is stuck.
	keys := make([]string, 0, len(st.Metrics))
	for k := range st.Metrics {
		if strings.HasSuffix(k, ".step_samples") || k == "workflow.restarts" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if v := st.Metrics[k]; v != 0 {
			fmt.Printf("  %s=%d\n", k, v)
		}
	}
}
