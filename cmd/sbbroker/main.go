// Command sbbroker serves a SmartBlock stream broker over TCP, the
// rendezvous point for workflows whose components run as separate OS
// processes (via sbrun -broker or sbcomp):
//
//	sbbroker [-transport tcp|uds|shm] [-addr :7777] [-drain 10s] [-metrics-addr 127.0.0.1:7778]
//	         [-admin-addr 127.0.0.1:7779]
//	         [-log-dir DIR] [-log-segment-bytes N] [-log-retain-steps N] [-log-retain-bytes N] [-log-fsync none|step]
//
// It prints the bound address and runs until interrupted. On SIGINT or
// SIGTERM it shuts down gracefully: it stops accepting connections,
// waits up to -drain for attached components to finish their streams,
// then severs whatever remains — and logs a per-stream post-mortem
// (writers, readers, queued steps, failures) so a wedged or failed
// workflow can be diagnosed after the fact.
//
// With -log-dir the broker journals every stream to a durable segmented
// log under that directory and, at startup, recovers any streams a
// previous broker left there — so a crashed broker can be relaunched on
// the same directory and the workflow resumes where it stopped. The
// companion knobs bound the log (segment roll-over size, retention by
// steps or bytes) and pick the fsync policy; see internal/streamlog.
//
// With -metrics-addr it also serves a debug HTTP endpoint: /metrics
// returns the fabric's counter snapshot as JSON (steps published and
// retired, bytes on the wire, pool hit rate, heartbeat misses), and
// /debug/pprof/ exposes the standard Go profiler, so a live broker can
// be inspected while a workflow runs against it.
//
// With -admin-addr the broker becomes a long-running multi-tenant
// service: the address serves the control-plane admin API (package
// controlplane) — tenant registration with quotas, workflow submission
// in the launch-script format, live status, cancellation, and graceful
// tenant eviction. sbctl is the companion client. Submitted workflows
// run inside the broker process over the in-process fabric, namespaced
// per tenant and submission, so their streams are also reachable from
// outside through the socket transport under their qualified names.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/flexpath"
	"repro/internal/obs"
	"repro/internal/streamlog"
)

func main() {
	transport := flag.String("transport", flexpath.KindTCP, "socket flavor to serve: tcp, uds (Unix-domain socket), or shm (UDS doorbell + shared-memory segment)")
	addr := flag.String("addr", "", "listen address: host:port for tcp (default 127.0.0.1:7777; port 0 picks a free port), socket path for uds/shm")
	drain := flag.Duration("drain", 10*time.Second, "how long to wait for open streams to drain on shutdown")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (registry snapshot) and /debug/pprof on this address")
	adminAddr := flag.String("admin-addr", "", "serve the multi-tenant control-plane admin API (tenants, workflow submission, eviction; see sbctl) on this address")
	logDir := flag.String("log-dir", "", "journal streams to a durable segmented log under this directory and recover them at startup")
	logSegmentBytes := flag.Int64("log-segment-bytes", 0, "log segment roll-over size in bytes (0 = default 64 MiB)")
	logRetainSteps := flag.Int("log-retain-steps", 0, "keep at least this many retired steps replayable (0 = keep all)")
	logRetainBytes := flag.Int64("log-retain-bytes", 0, "evict oldest retired segments while a stream's log exceeds this (0 = unbounded)")
	logFsync := flag.String("log-fsync", "none", "log durability: none (page cache) or step (fsync per record)")
	flag.Parse()

	broker := flexpath.NewBroker()
	broker.SetObserver(nil, obs.Default())
	var store *streamlog.Store
	if *logDir != "" {
		fsync, err := streamlog.ParseFsync(*logFsync)
		if err != nil {
			log.Fatalf("sbbroker: %v", err)
		}
		store, err = streamlog.OpenStore(*logDir, streamlog.Options{
			SegmentBytes: *logSegmentBytes,
			RetainSteps:  *logRetainSteps,
			RetainBytes:  *logRetainBytes,
			Fsync:        fsync,
		})
		if err != nil {
			log.Fatalf("sbbroker: %v", err)
		}
		broker.AttachLog(store)
		n, err := broker.Recover()
		if err != nil {
			log.Fatalf("sbbroker: recovering from %s: %v", *logDir, err)
		}
		if n > 0 {
			log.Printf("sbbroker: recovered %d stream(s) from %s", n, *logDir)
		}
	}
	var srv *flexpath.Server
	var err error
	switch *transport {
	case flexpath.KindTCP:
		listen := *addr
		if listen == "" {
			listen = "127.0.0.1:7777"
		}
		srv, err = flexpath.NewServer(broker, listen)
	case flexpath.KindUDS:
		if *addr == "" {
			log.Fatalf("sbbroker: -transport uds requires -addr /path/to.sock")
		}
		srv, err = flexpath.NewUnixServer(broker, *addr)
	case flexpath.KindShm:
		if *addr == "" {
			log.Fatalf("sbbroker: -transport shm requires -addr /path/to.sock")
		}
		srv, err = flexpath.NewShmServer(broker, *addr, flexpath.ShmConfig{})
	default:
		log.Fatalf("sbbroker: unknown -transport %q (want %s, %s, or %s)",
			*transport, flexpath.KindTCP, flexpath.KindUDS, flexpath.KindShm)
	}
	if err != nil {
		log.Fatalf("sbbroker: %v", err)
	}
	fmt.Printf("sbbroker listening on %s\n", srv.Addr())
	if *metricsAddr != "" {
		// net/http/pprof registered its handlers on the default mux;
		// adding /metrics there puts both behind one debug listener.
		http.Handle("/metrics", obs.Default().Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Printf("sbbroker: metrics endpoint: %v", err)
			}
		}()
		fmt.Printf("sbbroker metrics on http://%s/metrics\n", *metricsAddr)
	}
	var cp *controlplane.Service
	if *adminAddr != "" {
		cp, err = controlplane.NewService(controlplane.Config{
			Transport: flexpath.InProc{B: broker},
			Broker:    broker,
			Registry:  obs.Default(),
			Logf:      log.Printf,
		})
		if err != nil {
			log.Fatalf("sbbroker: %v", err)
		}
		adminLn, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("sbbroker: admin endpoint: %v", err)
		}
		go func() {
			if err := http.Serve(adminLn, cp.Handler()); err != nil {
				log.Printf("sbbroker: admin endpoint: %v", err)
			}
		}()
		fmt.Printf("sbbroker admin API on http://%s/v1/tenants\n", adminLn.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("sbbroker: received %s, draining streams for up to %s", s, *drain)
	if cp != nil {
		// Stop the control plane first: cancel in-process workflows so
		// their streams settle before the socket server drains.
		if cerr := cp.Close(); cerr != nil {
			log.Printf("sbbroker: control plane: %v", cerr)
		}
	}
	err = srv.Shutdown(*drain)
	logStreamStats(broker)
	if store != nil {
		// Drain the write-behind appender before closing: otherwise the
		// tail of the recording (late steps, stream end records) may
		// still sit in the append queue, and an offline replay would see
		// a clean run as truncated.
		flushCtx, cancel := context.WithTimeout(context.Background(), *drain)
		if ferr := broker.FlushLog(flushCtx); ferr != nil {
			log.Printf("sbbroker: flushing stream log: %v", ferr)
		}
		cancel()
		if cerr := store.Close(); cerr != nil {
			log.Printf("sbbroker: closing stream log: %v", cerr)
		}
	}
	if err != nil {
		log.Fatalf("sbbroker: %v", err)
	}
}

// logStreamStats emits the shutdown post-mortem: one line per stream.
func logStreamStats(broker *flexpath.Broker) {
	stats := broker.StreamStats()
	if len(stats) == 0 {
		log.Printf("sbbroker: no streams were created")
		return
	}
	for _, st := range stats {
		state := "open"
		switch {
		case st.Failed != "":
			state = "FAILED: " + st.Failed
		case st.Ended:
			state = "ended"
		}
		log.Printf("sbbroker: stream %-20s writers=%d/%d readers=%d/%d queued=%d published=%d minstep=%d %s",
			st.Name, st.WritersLive, st.WriterSize, st.ReadersLive, st.ReaderSize,
			st.QueuedSteps, st.StepsPublished, st.MinStep, state)
	}
}
