// Command sbbroker serves a SmartBlock stream broker over TCP, the
// rendezvous point for workflows whose components run as separate OS
// processes (via sbrun -broker or sbcomp):
//
//	sbbroker [-transport tcp|uds] [-addr :7777] [-drain 10s] [-metrics-addr 127.0.0.1:7778]
//
// It prints the bound address and runs until interrupted. On SIGINT or
// SIGTERM it shuts down gracefully: it stops accepting connections,
// waits up to -drain for attached components to finish their streams,
// then severs whatever remains — and logs a per-stream post-mortem
// (writers, readers, queued steps, failures) so a wedged or failed
// workflow can be diagnosed after the fact.
//
// With -metrics-addr it also serves a debug HTTP endpoint: /metrics
// returns the fabric's counter snapshot as JSON (steps published and
// retired, bytes on the wire, pool hit rate, heartbeat misses), and
// /debug/pprof/ exposes the standard Go profiler, so a live broker can
// be inspected while a workflow runs against it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/flexpath"
	"repro/internal/obs"
)

func main() {
	transport := flag.String("transport", flexpath.KindTCP, "socket flavor to serve: tcp or uds (Unix-domain socket)")
	addr := flag.String("addr", "", "listen address: host:port for tcp (default 127.0.0.1:7777; port 0 picks a free port), socket path for uds")
	drain := flag.Duration("drain", 10*time.Second, "how long to wait for open streams to drain on shutdown")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (registry snapshot) and /debug/pprof on this address")
	flag.Parse()

	broker := flexpath.NewBroker()
	broker.SetObserver(nil, obs.Default())
	var srv *flexpath.Server
	var err error
	switch *transport {
	case flexpath.KindTCP:
		listen := *addr
		if listen == "" {
			listen = "127.0.0.1:7777"
		}
		srv, err = flexpath.NewServer(broker, listen)
	case flexpath.KindUDS:
		if *addr == "" {
			log.Fatalf("sbbroker: -transport uds requires -addr /path/to.sock")
		}
		srv, err = flexpath.NewUnixServer(broker, *addr)
	default:
		log.Fatalf("sbbroker: unknown -transport %q (want %s or %s)", *transport, flexpath.KindTCP, flexpath.KindUDS)
	}
	if err != nil {
		log.Fatalf("sbbroker: %v", err)
	}
	fmt.Printf("sbbroker listening on %s\n", srv.Addr())
	if *metricsAddr != "" {
		// net/http/pprof registered its handlers on the default mux;
		// adding /metrics there puts both behind one debug listener.
		http.Handle("/metrics", obs.Default().Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Printf("sbbroker: metrics endpoint: %v", err)
			}
		}()
		fmt.Printf("sbbroker metrics on http://%s/metrics\n", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("sbbroker: received %s, draining streams for up to %s", s, *drain)
	err = srv.Shutdown(*drain)
	logStreamStats(broker)
	if err != nil {
		log.Fatalf("sbbroker: %v", err)
	}
}

// logStreamStats emits the shutdown post-mortem: one line per stream.
func logStreamStats(broker *flexpath.Broker) {
	stats := broker.StreamStats()
	if len(stats) == 0 {
		log.Printf("sbbroker: no streams were created")
		return
	}
	for _, st := range stats {
		state := "open"
		switch {
		case st.Failed != "":
			state = "FAILED: " + st.Failed
		case st.Ended:
			state = "ended"
		}
		log.Printf("sbbroker: stream %-20s writers=%d/%d readers=%d/%d queued=%d published=%d minstep=%d %s",
			st.Name, st.WritersLive, st.WriterSize, st.ReadersLive, st.ReaderSize,
			st.QueuedSteps, st.StepsPublished, st.MinStep, state)
	}
}
