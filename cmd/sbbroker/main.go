// Command sbbroker serves a SmartBlock stream broker over TCP, the
// rendezvous point for workflows whose components run as separate OS
// processes (via sbrun -broker or sbcomp):
//
//	sbbroker [-addr :7777]
//
// It prints the bound address and runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/flexpath"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address (port 0 picks a free port)")
	flag.Parse()

	srv, err := flexpath.NewServer(flexpath.NewBroker(), *addr)
	if err != nil {
		log.Fatalf("sbbroker: %v", err)
	}
	fmt.Printf("sbbroker listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	if err := srv.Close(); err != nil {
		log.Fatalf("sbbroker: %v", err)
	}
}
