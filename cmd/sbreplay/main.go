// Command sbreplay re-runs workflow components offline against a
// recorded stream log — the re-analysis half of the durable log story:
// a recorded run is not just crash insurance, it is a dataset any
// component can be re-executed over, with no simulation and no live
// workflow.
//
//	sbreplay [-v] [-stage SEL] [-args "…"] [-log-dir DIR] [-out DIR] [-trace out.jsonl] [-profile-out prof.json] workflow.sh
//	sbreplay -diff [-tol EPS] -stage SEL [-args "…"] [-alt "…"] [-log-dir DIR] workflow.sh
//	sbreplay -diff [-tol EPS] -against DIRB [-stage SEL [-args "…"]] [-log-dir DIRA] [workflow.sh]
//	sbreplay -whatif 1,2,4 -stage SEL [-whatif-repeats N] [-profile prof.json] [-log-dir DIR] workflow.sh
//	sbreplay -ls [-log-dir DIR] [workflow.sh]
//
// The script is the same aprun job script sbrun launches; the recording
// comes from -log-dir, falling back to the script's `replay <dir>`
// directive, then its `log <dir>` directive (replaying a run against
// its own recording). Without -stage the whole workflow re-runs stage
// by stage in dependency order; -stage selects one stage by component
// name or index (sbrun -explain shows both), and -args replaces that
// stage's arguments (tokenized with script quoting rules).
//
// -diff executes the selected stage twice over the same recorded input
// — as scripted (or with -args) for variant A, with -alt arguments for
// variant B (omitting -alt self-diffs A against itself) — and compares
// every output stream step by step, array by array, after assembling
// each step's blocks into global arrays, so variants may repartition
// work freely. -tol 0 (the default) demands bit-identical float64s;
// otherwise values within the tolerance agree. Exit status follows
// diff(1): 0 when the variants agree, 1 when they diverge, 2 on usage
// or execution trouble.
//
// -diff -against DIR compares against a second RECORDING instead of a
// second re-run: without -stage the two recordings are diffed stream
// by stream as they sit on disk (a clean run against its
// crash-recovered re-run, this week's corpus refresh against last
// week's); with -stage the selected stage replays over recording A and
// its captured outputs are compared to the same-named streams of
// recording B — the regression-corpus gate, pinning today's kernels to
// a golden recording's outputs. The script may be omitted in the pure
// recording-vs-recording form when -log-dir names recording A.
//
// -whatif validates the cost model's scaling predictions offline: the
// selected stage replays at each candidate rank count (best of
// -whatif-repeats runs kept) and the measured wall time per step is put
// next to the model's prediction from -profile (or a profile distilled
// from the recording on the spot). Exit status 1 flags a model whose
// candidate ordering disagrees with the measurements — the property
// `sbrun -optimize`'s knee choice depends on. -profile-out writes the
// replay-derived profile for later sbrun -optimize runs.
//
// -ls lists what the recording holds and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/cost"
	"repro/internal/flexpath"
	"repro/internal/launch"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/workflow"

	_ "repro/internal/sim/gromacs"
	_ "repro/internal/sim/gtcp"
	_ "repro/internal/sim/lammps"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sbreplay: ")

	verbose := flag.Bool("v", false, "log component diagnostics")
	list := flag.Bool("ls", false, "list the recording's streams and exit")
	stageSel := flag.String("stage", "", "replay one stage: component name or stage index (default: every stage)")
	argsOverride := flag.String("args", "", "replace the selected stage's arguments (script quoting rules; requires -stage)")
	diffMode := flag.Bool("diff", false, "differential mode: run the selected stage twice and compare outputs (requires -stage)")
	altArgs := flag.String("alt", "", "variant B's arguments for -diff (default: same as variant A, a self-diff)")
	against := flag.String("against", "", "variant B is this RECORDING for -diff: compare replayed captures (with -stage) or the whole primary recording (without) to its streams")
	tol := flag.Float64("tol", 0, "value tolerance for -diff: 0 compares float64 bits exactly")
	logDir := flag.String("log-dir", "", "recorded log directory to replay against (default: the script's replay directive, else its log directive)")
	outDir := flag.String("out", "", "re-record the replayed outputs as a fresh log directory here")
	tracePath := flag.String("trace", "", "write per-step spans (replay serving, stage steps, diff comparisons) to this JSONL file")
	traceRing := flag.Int("trace-ring", 0, "span ring capacity for -trace (0 = default 65536)")
	whatif := flag.String("whatif", "", "validate the cost model's scaling predictions: replay the -stage at these comma-separated rank counts and compare measured wall/step to the model (exit 1 on ordering disagreement)")
	whatifRepeats := flag.Int("whatif-repeats", 3, "measurement repeats per -whatif candidate (best run kept)")
	profilePath := flag.String("profile", "", "cost profile JSON for -whatif predictions (default: profile the stage from the recording first)")
	profileOut := flag.String("profile-out", "", "distill the replay into a cost profile JSON at the given path (feeds sbrun -optimize)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sbreplay [flags] workflow.sh\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	fail := func(format string, args ...any) {
		log.Printf(format, args...)
		os.Exit(2)
	}

	// The script may be omitted when the mode needs no stages and the
	// recording comes from -log-dir: listing, and the pure
	// recording-vs-recording diff.
	scriptless := *logDir != "" && (*list || (*diffMode && *against != "" && *stageSel == ""))
	if flag.NArg() > 1 || (flag.NArg() == 0 && !scriptless) {
		flag.Usage()
		os.Exit(2)
	}

	var spec workflow.Spec
	if flag.NArg() == 1 {
		var err error
		spec, err = launch.ParseFile(flag.Arg(0))
		if err != nil {
			fail("%v", err)
		}
	}

	dir := *logDir
	if dir == "" {
		dir = spec.ReplayDir
	}
	if dir == "" {
		dir = spec.LogDir
	}
	if dir == "" {
		fail("no recording: pass -log-dir or add a `replay <dir>` (or `log <dir>`) directive to the script")
	}

	src, err := flexpath.OpenLogSource(dir)
	if err != nil {
		fail("%v", err)
	}
	defer src.Close()

	if *list {
		listRecording(src, dir)
		return
	}

	// Resolve which stages replay. -stage narrows to one via the plan
	// (so selection errors name what the plan holds); otherwise the
	// whole spec re-runs in dependency order.
	stages := spec.Stages
	if *stageSel != "" {
		plan, err := workflow.BuildPlan(spec)
		if err != nil {
			fail("%v", err)
		}
		sub, err := plan.StageSubset(*stageSel)
		if err != nil {
			fail("%v", err)
		}
		stages = []workflow.Stage{sub.Node.Stage}
	}
	if *argsOverride != "" {
		if *stageSel == "" {
			fail("-args needs -stage: it replaces one stage's arguments")
		}
		args, err := launch.Fields(*argsOverride)
		if err != nil {
			fail("-args: %v", err)
		}
		stages[0].Args = args
	}
	if *diffMode && *stageSel == "" && *against == "" {
		fail("-diff needs -stage (pick the component to A/B) or -against (a recording to compare to)")
	}
	if *whatif != "" && *diffMode {
		fail("-whatif and -diff are different modes; pick one")
	}
	if *whatif != "" && *stageSel == "" {
		fail("-whatif needs -stage: it re-runs one stage at candidate rank counts")
	}
	if !*diffMode && *altArgs != "" {
		fail("-alt only applies with -diff")
	}
	if !*diffMode && *against != "" {
		fail("-against only applies with -diff")
	}
	if *against != "" && *altArgs != "" {
		fail("-alt and -against both name variant B; pick one")
	}

	cfg := replay.Config{Source: src, OutDir: *outDir, Name: "sbreplay"}
	if *verbose {
		cfg.Logf = log.Printf
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(*traceRing)
		cfg.Tracer = tracer
		cfg.Registry = obs.Default()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	status := 0
	if *whatif != "" {
		ranks, err := parseRanks(*whatif)
		if err != nil {
			fail("-whatif: %v", err)
		}
		var prof *cost.Profile
		if *profilePath != "" {
			if prof, err = cost.Load(*profilePath); err != nil {
				fail("%v", err)
			}
		} else if prof, _, err = replay.Profile(ctx, cfg, stages[0]); err != nil {
			fail("profiling stage from recording: %v", err)
		}
		if *profileOut != "" {
			if err := prof.Save(*profileOut); err != nil {
				fail("%v", err)
			}
		}
		rep, err := replay.WhatIf(ctx, cfg, cost.DefaultModel(), prof, stages[0], ranks, *whatifRepeats)
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(rep.String())
		if !rep.Agreement {
			os.Exit(1)
		}
		return
	}
	if *diffMode {
		var rep *replay.DiffReport
		var err error
		switch {
		case *against != "" && *stageSel == "":
			// Recording vs recording: nothing replays, the two
			// directories are compared as they sit on disk.
			rep, err = replay.CompareRecordings(tracer, *tol, dir, *against)
			if err != nil {
				writeTraceIfAsked(*tracePath, tracer)
				fail("%v", err)
			}
		case *against != "":
			// Replay the selected stage over recording A and pin its
			// captured outputs to recording B's same-named streams.
			// Streams B holds beyond the captures are A's inputs, not
			// the stage's outputs — they are not compared.
			res, rerr := replay.Run(ctx, cfg, stages...)
			if rerr != nil {
				writeTraceIfAsked(*tracePath, tracer)
				fail("%v", rerr)
			}
			all, terr := replay.ReadTraces(*against)
			if terr != nil {
				writeTraceIfAsked(*tracePath, tracer)
				fail("%v", terr)
			}
			b := make(map[string]*replay.StreamTrace, len(res.Captures))
			for name := range res.Captures {
				if tr, ok := all[name]; ok {
					b[name] = tr
				}
			}
			rep = replay.Compare(tracer, *tol, res.Captures, b)
		default:
			a := []workflow.Stage{stages[0]}
			b := []workflow.Stage{stages[0]}
			if *altArgs != "" {
				alt, aerr := launch.Fields(*altArgs)
				if aerr != nil {
					fail("-alt: %v", aerr)
				}
				b[0].Args = alt
			}
			rep, err = replay.Diff(ctx, cfg, *tol, a, b)
			if err != nil {
				writeTraceIfAsked(*tracePath, tracer)
				fail("%v", err)
			}
		}
		fmt.Print(rep.Render())
		if rep.Divergent() {
			status = 1
		}
	} else if *profileOut != "" {
		// One replay serves both: the run's captures print as usual and
		// its spans/counters distill into the profile.
		prof, res, err := replay.Profile(ctx, cfg, stages...)
		if res != nil {
			printRun(res)
		}
		if err != nil {
			writeTraceIfAsked(*tracePath, tracer)
			fail("%v", err)
		}
		if err := prof.Save(*profileOut); err != nil {
			fail("%v", err)
		}
		fmt.Printf("profile written to %s (%d stage(s), %d edge(s))\n",
			*profileOut, len(prof.Stages), len(prof.Edges))
	} else {
		res, err := replay.Run(ctx, cfg, stages...)
		if res != nil {
			printRun(res)
		}
		if err != nil {
			writeTraceIfAsked(*tracePath, tracer)
			fail("%v", err)
		}
	}
	writeTraceIfAsked(*tracePath, tracer)
	os.Exit(status)
}

// parseRanks parses a comma-separated candidate rank-count list.
func parseRanks(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad rank count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rank counts in %q", s)
	}
	return out, nil
}

// listRecording prints each recorded stream's shape: writer count,
// step range, and how the recording ended.
func listRecording(src *flexpath.LogSource, dir string) {
	streams := src.Streams()
	fmt.Printf("recording %s: %d stream(s)\n", dir, len(streams))
	for _, name := range streams {
		lg, err := src.Store().Log(name)
		if err != nil {
			fmt.Printf("  %s: %v\n", name, err)
			continue
		}
		cfg, ok := lg.Config()
		if !ok {
			fmt.Printf("  %s: empty (no config journaled)\n", name)
			continue
		}
		state := "truncated (no end record)"
		if last, ended := lg.Ended(); ended {
			state = fmt.Sprintf("ended at step %d", last)
		}
		fmt.Printf("  %s: writers=%d steps=[%d..%d) %s\n",
			name, cfg.WriterSize, lg.FirstStep(), lg.NextStep(), state)
	}
}

// printRun summarizes a replay's captures.
func printRun(res *replay.RunResult) {
	for _, name := range sortedKeys(res.Captures) {
		tr := res.Captures[name]
		state := "truncated"
		if tr.Ended {
			state = fmt.Sprintf("ended at step %d", tr.LastStep)
		}
		fmt.Printf("captured %s: %d step(s), %d bytes, %s\n", name, len(tr.Steps), tr.Bytes(), state)
	}
	for _, name := range res.Truncated {
		fmt.Printf("input %s: recording truncated (live run's tail missing)\n", name)
	}
}

func sortedKeys(m map[string]*replay.StreamTrace) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeTraceIfAsked dumps the tracer ring as JSONL, one span per line.
func writeTraceIfAsked(path string, tracer *obs.Tracer) {
	if path == "" || tracer == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("writing trace: %v", err)
		return
	}
	if err := tracer.WriteJSONL(f); err != nil {
		log.Printf("writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Printf("writing trace: %v", err)
	}
}
