// Command sbcomp runs a single SmartBlock component (or simulation
// driver) as its own OS process, attaching to a remote broker — the
// closest analogue of the paper's one-MPI-executable-per-component
// deployment model:
//
//	sbcomp [-transport tcp|uds|shm|auto] -broker addr -n procs component arg...
//
// For example, the Fig. 8 LAMMPS workflow as four separate processes
// sharing one sbbroker:
//
//	sbbroker &
//	sbcomp -broker 127.0.0.1:7777 -n 1 histogram velos.fp velocities 16 &
//	sbcomp -broker 127.0.0.1:7777 -n 2 magnitude sel.fp lmpsel velos.fp velocities &
//	sbcomp -broker 127.0.0.1:7777 -n 2 select dump.fp atoms 1 sel.fp lmpsel vx vy vz &
//	sbcomp -broker 127.0.0.1:7777 -n 4 lammps dump.fp atoms 20000 5 &
//	wait
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/components"
	"repro/internal/flexpath"
	"repro/internal/mpi"
	"repro/internal/sb"

	_ "repro/internal/sim/gromacs"
	_ "repro/internal/sim/gtcp"
	_ "repro/internal/sim/lammps"
)

func main() {
	transportKind := flag.String("transport", "tcp", "broker socket flavor: tcp, uds, shm, or auto (resolve from -broker's shape)")
	broker := flag.String("broker", "127.0.0.1:7777", "sbbroker address: host:port for tcp, socket path for uds/shm")
	procs := flag.Int("n", 1, "number of ranks for this component")
	queue := flag.Int("q", 0, "writer-side queue depth for published streams (0 = default)")
	ports := flag.Bool("ports", false, "print the component's declared stream ports and exit without running")
	verbose := flag.Bool("v", false, "log component diagnostics")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: sbcomp [flags] component arg...\n\ncomponents: %v\n\n", components.Names())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	comp, err := components.New(flag.Arg(0), flag.Args()[1:])
	if err != nil {
		log.Fatalf("sbcomp: %v", err)
	}

	if *ports {
		// Port introspection: what the workflow planner sees (the same
		// declarations `sbrun -explain` derives its dataflow edges from).
		pd, ok := comp.(sb.PortDeclarer)
		if !ok {
			log.Fatalf("sbcomp: component %q declares no ports", comp.Name())
		}
		for _, p := range pd.Ports() {
			if p.Array == "" {
				fmt.Printf("%-3s %s\n", p.Dir, p.Stream)
			} else {
				fmt.Printf("%-3s %s[%s]\n", p.Dir, p.Stream, p.Array)
			}
		}
		return
	}

	kind := *transportKind
	if kind == flexpath.KindAuto {
		kind = flexpath.ResolveAuto(*broker)
	}
	if kind == flexpath.KindInproc {
		// A private in-process broker has no peers to rendezvous with —
		// the component would block forever on its streams.
		log.Fatalf("sbcomp: -transport must name a shared broker (%s, %s, or %s)",
			flexpath.KindTCP, flexpath.KindUDS, flexpath.KindShm)
	}
	fabric, err := flexpath.Open(kind, *broker)
	if err != nil {
		log.Fatalf("sbcomp: %v", err)
	}
	defer fabric.Close()
	transport := sb.Fabric{T: fabric}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	metrics := sb.NewMetrics(comp.Name(), *procs)
	err = mpi.RunCtx(ctx, *procs, func(comm *mpi.Comm) error {
		env := &sb.Env{
			Comm:       comm,
			Transport:  transport,
			Args:       flag.Args()[1:],
			QueueDepth: *queue,
			Metrics:    metrics,
		}
		if *verbose {
			env.Logf = log.Printf
		}
		return comp.Run(env)
	})
	if err != nil {
		log.Fatalf("sbcomp: %v", err)
	}
	steps := metrics.Steps()
	fmt.Printf("%s finished: %d ranks, %d steps, %d bytes in, %d bytes out\n",
		comp.Name(), *procs, len(steps), metrics.TotalBytesIn(), metrics.TotalBytesOut())
}
