// Command sbrun launches a complete SmartBlock workflow from an
// aprun-style job script (the paper's Fig. 8 format):
//
//	sbrun [-v] [-explain] [-fuse] [-transport inproc|tcp|uds|shm|auto] [-broker addr] [-log-dir DIR] [-max-restarts N] [-step-timeout D] [-trace out.jsonl] [-profile-out prof.json] [-optimize prof.json] [-rescale] workflow.sh
//
// Every aprun line becomes a component stage; all stages launch
// simultaneously and rendezvous on their stream names. -transport (or a
// `transport` directive in the script) selects the stream fabric: the
// default in-process broker, a remote TCP sbbroker at -broker host:port,
// a Unix-socket sbbroker at -broker /path/to.sock, or the shared-memory
// ring of an sbbroker -transport shm on the same node — letting several
// sbrun/sbcomp processes form one workflow without recompiling any
// component. `auto` resolves the kind from the address shape (no
// address → inproc, path → shm, host:port → tcp); per-stream `transport
// ... stream=<name>` directives route individual edges over other
// backends, and `sbrun -explain` prints the per-edge resolution.
//
// -log-dir (or a `log` directive in the script) mounts a durable stream
// log on the in-process broker: every step is journaled to disk, and a
// relaunched sbrun pointed at the same directory recovers the streams a
// crashed run left behind. With a remote transport the directive is
// informational only — durability belongs to the sbbroker process, which
// takes its own -log-dir. A recording outlives the run: sbreplay re-runs
// any component offline against it (a `replay <dir>` script directive
// names the default recording for sbreplay without affecting sbrun).
//
// Example script:
//
//	aprun -n 4 lammps dump.fp atoms 20000 5 &
//	aprun -n 2 select dump.fp atoms 1 sel.fp lmpsel vx vy vz &
//	aprun -n 2 magnitude sel.fp lmpsel velos.fp velocities &
//	aprun -n 1 histogram velos.fp velocities 16 velocity_hist.txt &
//	wait
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cost"
	"repro/internal/flexpath"
	"repro/internal/launch"
	"repro/internal/obs"
	"repro/internal/sb"
	"repro/internal/streamlog"
	"repro/internal/workflow"

	_ "repro/internal/sim/gromacs"
	_ "repro/internal/sim/gtcp"
	_ "repro/internal/sim/lammps"
)

func main() {
	verbose := flag.Bool("v", false, "log component diagnostics")
	lintOnly := flag.Bool("lint", false, "check the workflow's stream wiring and exit without running")
	explain := flag.Bool("explain", false, "print the workflow plan (stages, dataflow edges, fusion analysis, lint) and exit without running")
	fuse := flag.Bool("fuse", false, "apply the stage-fusion pass before launching (same as a `fuse` script directive)")
	transportKind := flag.String("transport", "", "stream fabric backend: inproc, tcp, uds, shm, or auto (default: the script's transport directive, else inproc)")
	broker := flag.String("broker", "", "backend address: sbbroker host:port for tcp, socket path for uds/shm (plain -broker implies -transport tcp)")
	logDir := flag.String("log-dir", "", "journal streams to a durable segmented log under this directory (inproc transport; overrides the script's log directive)")
	maxRestarts := flag.Int("max-restarts", 0, "supervised restarts per stage for retryable failures (0 disables)")
	restartBackoff := flag.Duration("restart-backoff", 0, "delay before the first stage restart, doubling per retry (0 = 50ms default)")
	stepTimeout := flag.Duration("step-timeout", 0, "bound on every blocking stream operation per stage (0 disables)")
	tracePath := flag.String("trace", "", "write per-step spans from every layer to this JSONL file")
	traceRing := flag.Int("trace-ring", 0, "span ring capacity for -trace (0 = default 65536; oldest spans drop beyond it)")
	optimizePath := flag.String("optimize", "", "rewrite the plan with the cost planner against this profile JSON (from -profile-out or sbreplay -profile-out) before launching; with -explain, print the decision log instead of running")
	profileOut := flag.String("profile-out", "", "distill this run into a cost profile JSON at the given path (feeds a later -optimize)")
	rescale := flag.Bool("rescale", false, "enable the elastic-rescale monitor: a stage lagging the workflow leader is re-scaled at a step boundary")
	rescaleMax := flag.Int("rescale-max", 0, "rank-count ceiling for -rescale growth (0 = default 8)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sbrun [flags] workflow.sh\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	spec, err := launch.ParseFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("sbrun: %v", err)
	}
	if *fuse {
		spec.Fuse = true
	}

	// Backend selection happens before the plan is built so -explain
	// shows the same per-edge transport resolution a run would open. The
	// command line overrides the script's transport directive; a bare
	// -broker keeps its historical meaning of "remote TCP broker".
	if *transportKind != "" {
		spec.Transport.Kind = *transportKind
	}
	if *broker != "" {
		spec.Transport.Addr = *broker
		if spec.Transport.Kind == "" || spec.Transport.Kind == flexpath.KindInproc {
			spec.Transport.Kind = flexpath.KindTCP
		}
	}

	// The plan IR underlies everything pre-launch: -explain prints it,
	// lint checks it, and the fusion pass rewrites the spec from it.
	plan, err := workflow.BuildPlan(spec)
	if err != nil {
		log.Fatalf("sbrun: %v", err)
	}

	// Cost-model plan optimization: the planner rewrites rank counts,
	// fusion, and per-edge transports against a measured profile, and the
	// rewritten plan replaces the scripted one for everything downstream
	// (explain, lint, fusion, launch).
	var optimized *workflow.OptimizedPlan
	if *optimizePath != "" {
		prof, err := cost.Load(*optimizePath)
		if err != nil {
			log.Fatalf("sbrun: %v", err)
		}
		optimized, err = (workflow.CostPlanner{}).Optimize(plan, prof)
		if err != nil {
			log.Fatalf("sbrun: %v", err)
		}
		plan = optimized.Plan
		spec = optimized.Plan.Spec
	}
	if *explain {
		if optimized != nil {
			fmt.Print(plan.ExplainOptimized(optimized))
		} else {
			fmt.Print(plan.Explain())
		}
		return
	}

	// Wiring check: a misnamed stream would otherwise wedge the whole job
	// (readers block forever on a stream nobody publishes).
	issues := plan.Issues()
	fatal := false
	for _, issue := range issues {
		fmt.Fprintln(os.Stderr, "sbrun:", issue)
		if issue.Severity == "error" {
			fatal = true
		}
	}
	if fatal {
		log.Fatalf("sbrun: refusing to launch a mis-wired workflow (see errors above)")
	}
	if *lintOnly {
		if len(issues) == 0 {
			fmt.Println("workflow wiring OK")
		}
		return
	}

	// Stage fusion: collapse eligible adjacent stages into single fused
	// stages before launching.
	if spec.Fuse {
		fused, err := plan.Fuse()
		if err != nil {
			log.Fatalf("sbrun: %v", err)
		}
		for _, g := range fused.Groups {
			fmt.Fprintf(os.Stderr, "sbrun: fused stages %v as %s (streams elided: %v)\n",
				g.Stages, strings.Join(g.Parts, "+"), g.Elided)
		}
		if len(fused.Groups) == 0 && *verbose {
			log.Printf("sbrun: fuse requested but no stage chain is eligible")
		}
		spec = fused.Spec
	}

	// Open the fabric: the workflow default backend, plus — when the
	// script routed individual streams elsewhere — a per-stream Router
	// over each distinct backend, opened once.
	resolved := spec.Transport.Resolve()
	base, err := flexpath.Open(resolved.Kind, resolved.Addr)
	if err != nil {
		log.Fatalf("sbrun: %v", err)
	}
	fabric, err := routeEdges(base, resolved, spec.EdgeTransports)
	if err != nil {
		base.Close()
		log.Fatalf("sbrun: %v", err)
	}
	defer fabric.Close()
	kind := resolved.Kind
	transport := sb.Transport(sb.Fabric{T: fabric})

	// Durable stream log: the command line overrides the script's `log`
	// directive. It mounts on the in-process broker only — with a remote
	// transport, durability is the sbbroker process's job (-log-dir there).
	if *logDir != "" {
		spec.LogDir = *logDir
	}
	if spec.LogDir != "" {
		if ip, ok := base.(flexpath.InProc); ok {
			store, err := streamlog.OpenStore(spec.LogDir, streamlog.Options{})
			if err != nil {
				log.Fatalf("sbrun: %v", err)
			}
			// Drain the write-behind appender before closing: without the
			// flush the tail of the run (late steps, stream end records)
			// may still sit in the append queue, leaving a recording that
			// sbreplay sees as truncated even though the run was clean.
			defer store.Close()
			defer func() {
				flushCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				if err := ip.B.FlushLog(flushCtx); err != nil {
					log.Printf("sbrun: flushing stream log: %v", err)
				}
			}()
			ip.B.AttachLog(store)
			n, err := ip.B.Recover()
			if err != nil {
				log.Fatalf("sbrun: recovering from %s: %v", spec.LogDir, err)
			}
			if n > 0 {
				log.Printf("sbrun: recovered %d stream(s) from %s", n, spec.LogDir)
			}
		} else if *verbose {
			log.Printf("sbrun: log directory %s ignored on %s transport (set -log-dir on sbbroker instead)", spec.LogDir, kind)
		}
	}

	opts := workflow.Options{
		Restart: workflow.RestartPolicy{
			MaxRestarts: *maxRestarts,
			Backoff:     *restartBackoff,
			StepTimeout: *stepTimeout,
		},
	}
	if *verbose {
		opts.Logf = log.Printf
	}
	var tracer *obs.Tracer
	if *tracePath != "" || *profileOut != "" {
		// -profile-out needs the same span seams -trace records.
		tracer = obs.NewTracer(*traceRing)
		opts.Tracer = tracer
		opts.Registry = obs.Default()
		if ip, ok := base.(flexpath.InProc); ok {
			ip.B.SetObserver(tracer, opts.Registry)
		}
	}
	if *rescale {
		opts.Rescale = workflow.RescalePolicy{Enable: true, MaxProcs: *rescaleMax}
		if opts.Registry == nil {
			// The lag signal is registry step counters.
			opts.Registry = obs.Default()
			if ip, ok := base.(flexpath.InProc); ok {
				ip.B.SetObserver(opts.Tracer, opts.Registry)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := workflow.Run(ctx, transport, spec, opts)
	if res != nil {
		fmt.Print(workflow.Report(res))
	}
	if tracer != nil && *tracePath != "" {
		if werr := writeTrace(*tracePath, tracer); werr != nil {
			log.Printf("sbrun: writing trace: %v", werr)
		} else if dropped := tracer.Dropped(); dropped > 0 {
			log.Printf("sbrun: trace ring overflowed; oldest %d spans dropped (raise -trace-ring)", dropped)
		}
	}
	if *profileOut != "" {
		if perr := saveProfile(*profileOut, flag.Arg(0), tracer, opts.Registry, spec, kind); perr != nil {
			log.Printf("sbrun: writing profile: %v", perr)
		}
	}
	if err != nil {
		log.Fatalf("sbrun: %v", err)
	}
}

// routeEdges wraps the default backend in a per-stream Router when the
// script routed streams onto other transports. Each distinct resolved
// (kind, addr) pair opens exactly once — two streams routed to the same
// broker share one client — and Router.Close closes each once. With no
// per-stream entries the default backend is returned unwrapped.
func routeEdges(base flexpath.Transport, resolved workflow.TransportSpec,
	edges map[string]workflow.TransportSpec) (flexpath.Transport, error) {
	if len(edges) == 0 {
		return base, nil
	}
	router := flexpath.Router{Routes: map[string]flexpath.Transport{}, Default: base}
	opened := map[workflow.TransportSpec]flexpath.Transport{resolved: base}
	streams := make([]string, 0, len(edges))
	for stream := range edges {
		streams = append(streams, stream)
	}
	sort.Strings(streams) // deterministic open order
	for _, stream := range streams {
		r := edges[stream].Resolve()
		t, ok := opened[r]
		if !ok {
			var err error
			t, err = flexpath.Open(r.Kind, r.Addr)
			if err != nil {
				router.Close()
				return nil, fmt.Errorf("stream %q: %v", stream, err)
			}
			opened[r] = t
		}
		router.Routes[stream] = t
	}
	return router, nil
}

// saveProfile distills the finished run's spans and registry counters
// into a cost profile and writes it as JSON — the input of a later
// `sbrun -optimize` or `sbreplay -whatif`. Stages without a span seam
// (reduce endpoints) are synthesized from registry counters alone.
func saveProfile(path, script string, tracer *obs.Tracer, reg *obs.Registry,
	spec workflow.Spec, kind string) error {
	prof := cost.FromSpans(tracer.Spans())
	snap := reg.Snapshot()
	prof.ApplyRegistry(snap)
	for _, st := range spec.Stages {
		name := st.Component
		if name == "" && st.Instance != nil {
			name = st.Instance.Name()
		}
		if name == "" || prof.Stages[name] != nil {
			continue
		}
		if synth := cost.SynthesizeStage(name, st.Procs, snap); synth != nil {
			prof.Stages[name] = synth
		}
	}
	prof.Workflow = spec.Name
	prof.Transport = kind
	prof.Meta = map[string]string{"source": "sbrun -profile-out " + script}
	return prof.Save(path)
}

// writeTrace dumps the tracer's ring as JSONL, one span per line in
// emit order.
func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
