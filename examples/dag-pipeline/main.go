// DAG pipeline: the extension components working together, beyond the
// paper's linear workflows (§VI anticipates "much richer workflows
// described by directed acyclic graphs").
//
//	gromacs ──► step-sample ──► fork ──┬─► scale ──┐
//	                                   │           ├─► concat ──► stats
//	                                   └───────────┘
//
// A molecular-dynamics stream is thinned to every second timestep,
// forked into two branches, one branch converted from nanometers to
// Ångström by scale, the branches re-joined side by side by concat, and
// summary statistics of the combined array reported by stats — every
// stage a generic component configured purely by run-time arguments.
//
// Run with:
//
//	go run ./examples/dag-pipeline
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/components"
	"repro/internal/flexpath"
	"repro/internal/sb"
	"repro/internal/workflow"

	_ "repro/internal/sim/gromacs"
)

func main() {
	statsC, err := components.NewStats([]string{"joined.fp", "both"})
	if err != nil {
		log.Fatal(err)
	}
	stats := statsC.(*components.Stats)

	spec := workflow.Spec{
		Name: "dag-pipeline",
		Stages: []workflow.Stage{
			{Component: "gromacs", Args: []string{"pos.fp", "xyz", "5000", "6"}, Procs: 2},
			// Keep every 2nd timestep: the analysis cadence is coarser
			// than the simulation's output cadence.
			{Component: "step-sample", Args: []string{"pos.fp", "xyz", "2", "thin.fp", "xyz"}, Procs: 2},
			{Component: "fork", Args: []string{"thin.fp", "xyz", "nm.fp", "raw.fp"}, Procs: 2},
			// One branch in Ångström (×10), the other untouched.
			{Component: "scale", Args: []string{"nm.fp", "xyz", "10", "0", "ang.fp", "xyz"}, Procs: 2},
			{Component: "concat", Args: []string{"raw.fp", "xyz", "ang.fp", "xyz", "1", "joined.fp", "both"}, Procs: 2},
			{Instance: stats, Procs: 1},
		},
	}

	// Static wiring check before launch — a mistyped stream name would
	// otherwise block the whole job forever.
	issues, err := workflow.Lint(spec)
	if err != nil {
		log.Fatal(err)
	}
	for _, issue := range issues {
		fmt.Println("lint:", issue)
	}

	res, err := workflow.Run(context.Background(),
		sb.BrokerTransport{Broker: flexpath.NewBroker()}, spec, workflow.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(workflow.Report(res))

	fmt.Println("\nper-step statistics of the joined (raw ‖ ×10) coordinate array:")
	for _, s := range stats.Results() {
		fmt.Printf("  step %d: n=%d  min=%8.3f  max=%8.3f  mean=%7.4f  std=%6.3f\n",
			s.Step, s.Count, s.Min, s.Max, s.Mean, s.Std)
	}
	// The joined array interleaves x and 10x, so the mean is ~5.5x the
	// raw mean and the extremes are 10x the raw extremes — visible above.
}
