// GTCP toroid workflow (paper §V-A, Figs. 4 and 6): the toroidal plasma
// simulator outputs a three-dimensional (slices × gridpoints × 7
// quantities) array; Select filters the perpendicular pressure by name
// against the quantity header, and because Histogram expects
// one-dimensional data, the result "must go through two instances of
// Dim-Reduce" before the final distribution of pressures in the entire
// toroid is produced.
//
// Run with:
//
//	go run ./examples/gtcp-toroid
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/components"
	"repro/internal/flexpath"
	"repro/internal/sb"
	"repro/internal/workflow"

	_ "repro/internal/sim/gtcp"
)

func main() {
	histC, err := components.NewHistogram([]string{"flat.fp", "pressures", "20"})
	if err != nil {
		log.Fatal(err)
	}
	hist := histC.(*components.Histogram)

	spec := workflow.Spec{
		Name: "gtcp-toroid",
		Stages: []workflow.Stage{
			// gtcp output-stream output-array num-slices num-gridpoints num-steps
			{Component: "gtcp", Args: []string{"gtcp.fp", "grid", "16", "512", "4"}, Procs: 4},
			// select: keep only the perpendicular pressure (quantity axis = 2)
			{Component: "select", Args: []string{"gtcp.fp", "grid", "2",
				"psel.fp", "press", "pressure_perp"}, Procs: 2},
			// first dim-reduce: absorb the singleton quantity axis into the points
			{Component: "dim-reduce", Args: []string{"psel.fp", "press", "2", "1",
				"dr1.fp", "press2"}, Procs: 2},
			// second dim-reduce: absorb the toroidal slices into the points
			{Component: "dim-reduce", Args: []string{"dr1.fp", "press2", "0", "1",
				"flat.fp", "pressures"}, Procs: 2},
			{Instance: hist, Procs: 1},
		},
	}

	transport := sb.BrokerTransport{Broker: flexpath.NewBroker()}
	res, err := workflow.Run(context.Background(), transport, spec, workflow.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GTCP workflow completed in %s across %d processes\n\n",
		res.Elapsed.Round(1e6), res.TotalProcs())

	for _, h := range hist.Results() {
		fmt.Printf("step %d: perpendicular pressure over %d gridpoints, range [%.3f, %.3f]\n",
			h.Step, h.Total, h.Min, h.Max)
		// A terminal-friendly bar chart of the distribution.
		var peak int64 = 1
		for _, c := range h.Counts {
			if c > peak {
				peak = c
			}
		}
		for i, c := range h.Counts {
			lo, hi := h.Bin(i)
			bar := strings.Repeat("#", int(c*40/peak))
			fmt.Printf("  [%7.3f, %7.3f) %6d %s\n", lo, hi, c, bar)
		}
		fmt.Println()
	}
}
