// LAMMPS crack workflow (paper §V-A, Figs. 5 and 8): a particle
// simulation with a propagating crack drives Select → Magnitude →
// Histogram, producing a per-timestep distribution of particle velocity
// magnitudes. The workflow is assembled from the exact launch-script
// format of the paper's Fig. 8 and resolved at run time — no component
// was compiled for this workflow.
//
// Run with:
//
//	go run ./examples/lammps-crack
//
// The final histograms land in velocity_hist.txt; watch the
// high-velocity tail grow as the crack front releases particles.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/flexpath"
	"repro/internal/launch"
	"repro/internal/sb"
	"repro/internal/workflow"

	_ "repro/internal/sim/lammps" // the driving simulation registers itself by name
)

// script is the paper's Fig. 8, adapted to this repo's simulator
// arguments; note the decreasing process counts down the pipeline, as in
// the paper.
const script = `
# SmartBlock example launch script, LAMMPS workflow (Fig. 8)
aprun -n 1 histogram velos.fp velocities 16 velocity_hist.txt &
aprun -n 2 magnitude lmpselect.fp lmpsel velos.fp velocities &
aprun -n 2 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &
aprun -n 4 lammps dump.custom.fp atoms 20000 6 &
wait
`

func main() {
	spec, err := launch.Parse("lammps-crack", script)
	if err != nil {
		log.Fatal(err)
	}

	transport := sb.BrokerTransport{Broker: flexpath.NewBroker()}
	res, err := workflow.Run(context.Background(), transport, spec, workflow.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LAMMPS crack workflow completed in %s across %d processes\n",
		res.Elapsed.Round(1e6), res.TotalProcs())
	for _, st := range res.Stages {
		if st.Metrics == nil || len(st.Metrics.Steps()) == 0 {
			continue
		}
		steps := st.Metrics.Steps()
		mid := steps[len(steps)/2]
		fmt.Printf("  %-10s %d ranks, %d steps, per-proc throughput %.0f KB/s at step %d\n",
			st.Metrics.Component(), st.Stage.Procs, len(steps),
			mid.PerProcThroughput()/1024, mid.Step)
	}

	data, err := os.ReadFile("velocity_hist.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvelocity_hist.txt (%d bytes) — last step excerpt:\n", len(data))
	// Print the tail of the file: the final step's histogram.
	tail := data
	if len(tail) > 600 {
		tail = tail[len(tail)-600:]
	}
	fmt.Print(string(tail))
}
