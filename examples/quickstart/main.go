// Quickstart: the smallest complete SmartBlock workflow.
//
// A one-rank producer publishes a small self-describing 2-D array per
// timestep on stream "data.fp"; the generic Magnitude and Histogram
// components — configured purely by run-time arguments, exactly as they
// would be from an aprun line — turn it into a per-timestep distribution.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/adios"
	"repro/internal/components"
	"repro/internal/flexpath"
	"repro/internal/ndarray"
	"repro/internal/sb"
	"repro/internal/workflow"
)

// producer is a minimal SmartBlock-instrumented "simulation": each rank
// publishes its slab of a (points × 3) coordinate array per timestep.
// It implements sb.Component, so the workflow launcher treats it exactly
// like the built-in drivers.
type producer struct {
	points, steps int
}

func (p *producer) Name() string { return "producer" }

func (p *producer) Run(env *sb.Env) error {
	rank, size := env.Comm.Rank(), env.Comm.Size()
	offset, count := ndarray.Partition1D(p.points, size, rank)
	w, err := env.OpenWriter("data.fp")
	if err != nil {
		return err
	}
	defer w.Close()
	// Label the coordinate dimension so semantics-aware components
	// downstream know what each column is.
	w.SetStickyAttribute(components.HeaderAttr("coords"), adios.JoinList([]string{"x", "y", "z"}))

	rng := rand.New(rand.NewSource(int64(rank) + 1))
	globalDims := []ndarray.Dim{{Name: "points", Size: p.points}, {Name: "coords", Size: 3}}
	box := ndarray.Box{Offsets: []int{offset, 0}, Counts: []int{count, 3}}
	buf := make([]float64, count*3)
	for step := 0; step < p.steps; step++ {
		spread := 1.0 + float64(step) // the cloud grows every step
		for i := range buf {
			buf[i] = rng.NormFloat64() * spread
		}
		if err := w.BeginStep(); err != nil {
			return err
		}
		if err := w.Write("cloud", globalDims, box, buf); err != nil {
			return err
		}
		if err := w.EndStep(env.Ctx()); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	// A histogram endpoint we keep a handle on, to print its results.
	histC, err := components.NewHistogram([]string{"radii.fp", "radii", "10"})
	if err != nil {
		log.Fatal(err)
	}
	hist := histC.(*components.Histogram)

	spec := workflow.Spec{
		Name: "quickstart",
		Stages: []workflow.Stage{
			{Instance: &producer{points: 4096, steps: 4}, Procs: 2},
			// magnitude input-stream input-array output-stream output-array
			{Component: "magnitude", Args: []string{"data.fp", "cloud", "radii.fp", "radii"}, Procs: 2},
			{Instance: hist, Procs: 1},
		},
	}

	transport := sb.BrokerTransport{Broker: flexpath.NewBroker()}
	res, err := workflow.Run(context.Background(), transport, spec, workflow.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("quickstart finished in %s\n\n", res.Elapsed.Round(1e6))
	for _, h := range hist.Results() {
		fmt.Printf("distribution of |x| at step %d (n=%d, range [%.2f, %.2f]):\n",
			h.Step, h.Total, h.Min, h.Max)
		if err := components.WriteHistogramText(os.Stdout, "radii", h); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
