// GROMACS spread workflow (paper §V-A, Fig. 7): the molecular-dynamics
// mini-app outputs atom coordinates; Magnitude computes each atom's
// distance from the origin and Histogram shows "an evolution of the
// spread of the particles throughout the simulation."
//
// This example also demonstrates the storage-coupling extension from the
// paper's future work (§VI): the coordinate stream is simultaneously
// forked to a FileWriter, and after the in situ workflow finishes, a
// FileReader replays the persisted steps through a second analysis chain
// — the same components, now decoupled in time.
//
// Run with:
//
//	go run ./examples/gromacs-spread
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/components"
	"repro/internal/flexpath"
	"repro/internal/sb"
	"repro/internal/workflow"

	_ "repro/internal/sim/gromacs"
)

func main() {
	dir, err := os.MkdirTemp("", "gromacs-steps-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Phase 1 — in situ: gromacs → fork → (analysis chain | disk).
	histC, err := components.NewHistogram([]string{"dist.fp", "radii", "12"})
	if err != nil {
		log.Fatal(err)
	}
	hist := histC.(*components.Histogram)
	liveSpec := workflow.Spec{
		Name: "gromacs-live",
		Stages: []workflow.Stage{
			{Component: "gromacs", Args: []string{"gmx.fp", "positions", "20000", "6"}, Procs: 4},
			{Component: "fork", Args: []string{"gmx.fp", "positions", "live.fp", "store.fp"}, Procs: 2},
			{Component: "magnitude", Args: []string{"live.fp", "positions", "dist.fp", "radii"}, Procs: 2},
			{Instance: hist, Procs: 1},
			{Component: "file-writer", Args: []string{"store.fp", "positions", dir}, Procs: 2},
		},
	}
	res, err := workflow.Run(context.Background(),
		sb.BrokerTransport{Broker: flexpath.NewBroker()}, liveSpec, workflow.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in situ phase completed in %s\n", res.Elapsed.Round(1e6))
	fmt.Println("spread of the atom cloud over time (95th-percentile radius by histogram):")
	for _, h := range hist.Results() {
		fmt.Printf("  step %d: n=%d  mean-bin range [%.2f, %.2f]  max radius %.3f\n",
			h.Step, h.Total, h.Min, h.Max, h.Max)
	}

	// Phase 2 — post hoc: replay the persisted steps through a fresh
	// analysis chain with different rank counts.
	againC, err := components.NewHistogram([]string{"dist2.fp", "radii", "12"})
	if err != nil {
		log.Fatal(err)
	}
	again := againC.(*components.Histogram)
	replaySpec := workflow.Spec{
		Name: "gromacs-replay",
		Stages: []workflow.Stage{
			{Component: "file-reader", Args: []string{dir, "replay.fp"}, Procs: 3},
			{Component: "magnitude", Args: []string{"replay.fp", "positions", "dist2.fp", "radii"}, Procs: 3},
			{Instance: again, Procs: 1},
		},
	}
	res, err = workflow.Run(context.Background(),
		sb.BrokerTransport{Broker: flexpath.NewBroker()}, replaySpec, workflow.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplay phase completed in %s\n", res.Elapsed.Round(1e6))

	live, replay := hist.Results(), again.Results()
	if len(live) != len(replay) {
		log.Fatalf("replay saw %d steps, live saw %d", len(replay), len(live))
	}
	agree := true
	for s := range live {
		if live[s].Total != replay[s].Total || live[s].Min != replay[s].Min || live[s].Max != replay[s].Max {
			agree = false
		}
	}
	fmt.Printf("replayed analysis matches the in situ analysis step for step: %v\n", agree)
}
